(* Tests for the production extensions: top-k, span selection, index codec,
   chunked (streaming) extraction, parallel extraction, merger/window/lazy
   ablation variants. *)

module Tk = Faerie_tokenize
module S = Faerie_sim
module Sim = S.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Single_heap = Core.Single_heap
module Fallback = Core.Fallback
module Topk = Core.Topk
module Span_select = Core.Span_select
module Chunked = Core.Chunked
module Parallel = Core.Parallel
module Windows = Core.Windows
module Ix = Faerie_index
module Codec = Ix.Codec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let paper_dict =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let paper_doc =
  "an efficient filter for approximate membership checking. venkaee shga \
   kamunshik kabarati, dong xin, surauijt chadhurisigmod."

let all_char_matches ?pruning problem doc =
  let matches, _ = Single_heap.run ?pruning problem doc in
  let main =
    List.map
      (fun (m : Types.token_match) ->
        let c_start, c_len =
          Tk.Document.char_extent doc ~start:m.Types.m_start ~len:m.Types.m_len
        in
        { Types.c_entity = m.Types.m_entity; c_start; c_len; c_score = m.Types.m_score })
      matches
  in
  List.sort_uniq Types.compare_char_match (Fallback.run problem doc @ main)

let triples =
  List.map (fun (m : Types.char_match) -> (m.Types.c_entity, m.Types.c_start, m.Types.c_len))

(* ------------------------------------------------------------------ *)
(* Top-k                                                               *)
(* ------------------------------------------------------------------ *)

let ed_problem () = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict

let test_topk_best_is_exact_match () =
  let problem = ed_problem () in
  let doc = Problem.tokenize_document problem "we saw chaudhuri at sigmod" in
  match Topk.best problem doc with
  | Some m ->
      check_bool "best is the ed=0 hit" true (m.Types.c_score = S.Verify.Score.Distance 0)
  | None -> Alcotest.fail "expected a match"

let test_topk_sorted_and_bounded () =
  let problem = ed_problem () in
  let doc = Problem.tokenize_document problem paper_doc in
  let all = all_char_matches problem doc in
  let k = 3 in
  let top = Topk.top_k ~k problem doc in
  check_int "k results" k (List.length top);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        S.Verify.Score.compare a.Types.c_score b.Types.c_score <= 0 && sorted rest
    | _ -> true
  in
  check_bool "best first" true (sorted top);
  check_bool "subset of all matches" true
    (List.for_all (fun m -> List.mem m all) top)

let test_topk_equals_sorted_prefix () =
  let problem = ed_problem () in
  let doc = Problem.tokenize_document problem paper_doc in
  let all = all_char_matches problem doc in
  let expected k =
    let sorted =
      List.sort
        (fun a b ->
          let c = S.Verify.Score.compare a.Types.c_score b.Types.c_score in
          if c <> 0 then c else Types.compare_char_match a b)
        all
    in
    List.filteri (fun i _ -> i < k) sorted
  in
  List.iter
    (fun k ->
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "k=%d" k)
        (triples (expected k))
        (triples (Topk.top_k ~k problem doc)))
    [ 0; 1; 2; 5; 100 ]

let test_topk_k_zero_and_larger_than_matches () =
  let problem = ed_problem () in
  let doc = Problem.tokenize_document problem paper_doc in
  check_int "k=0" 0 (List.length (Topk.top_k ~k:0 problem doc));
  let all = all_char_matches problem doc in
  check_int "k=1000 returns all" (List.length all)
    (List.length (Topk.top_k ~k:1000 problem doc))

let test_topk_includes_fallback () =
  let problem = Problem.create ~sim:(Sim.Edit_distance 0) ~q:4 [ "ab" ] in
  let doc = Problem.tokenize_document problem "xxabyy" in
  check_bool "fallback entity wins" true (Topk.best problem doc <> None)

let gen_char_string_pre lo hi =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range lo hi))

let prop_topk_is_sorted_prefix =
  QCheck.Test.make ~count:150 ~name:"top-k equals k-prefix of score-sorted matches"
    QCheck.(
      make
        ~print:(fun (es, doc, k) ->
          Printf.sprintf "dict=[%s] doc=%S k=%d" (String.concat ";" es) doc k)
        Gen.(
          triple
            (list_size (int_range 1 4) (gen_char_string_pre 2 8))
            (gen_char_string_pre 8 30) (int_bound 8)))
    (fun (entities, text, k) ->
      let problem = Problem.create ~sim:(Sim.Edit_distance 1) ~q:2 entities in
      let doc = Problem.tokenize_document problem text in
      let all = all_char_matches problem doc in
      let expected =
        List.sort
          (fun a b ->
            let c = S.Verify.Score.compare a.Types.c_score b.Types.c_score in
            if c <> 0 then c else Types.compare_char_match a b)
          all
        |> List.filteri (fun i _ -> i < k)
      in
      triples (Topk.top_k ~k problem doc) = triples expected)

(* ------------------------------------------------------------------ *)
(* Span selection                                                      *)
(* ------------------------------------------------------------------ *)

let mk_span ?(entity = 0) ?(score = 1.0) start len =
  {
    Types.c_entity = entity;
    c_start = start;
    c_len = len;
    c_score = S.Verify.Score.Similarity score;
  }

let no_overlap ms =
  let rec loop = function
    | a :: (b :: _ as rest) ->
        a.Types.c_start + a.Types.c_len <= b.Types.c_start && loop rest
    | _ -> true
  in
  loop (List.sort (fun a b -> compare a.Types.c_start b.Types.c_start) ms)

let total_weight w ms = List.fold_left (fun acc m -> acc +. w m) 0. ms

let test_select_simple () =
  (* Two overlapping weak spans vs one strong one. *)
  let a = mk_span ~score:0.6 0 4
  and b = mk_span ~score:0.6 5 4
  and c = mk_span ~score:1.0 2 4 in
  let picked = Span_select.select [ a; b; c ] in
  check_bool "non-overlapping" true (no_overlap picked);
  Alcotest.(check (list (triple int int int))) "keeps both disjoint weak spans"
    [ (0, 0, 4); (0, 5, 4) ]
    (triples picked)

let test_select_empty () =
  check_int "empty" 0 (List.length (Span_select.select []))

let test_select_touching_spans_kept () =
  let picked = Span_select.select [ mk_span 0 3; mk_span 3 3 ] in
  check_int "both kept" 2 (List.length picked)

let test_select_negative_weight_rejected () =
  check_bool "raises" true
    (try
       ignore (Span_select.select ~weight:(fun _ -> -1.) [ mk_span 0 1 ]);
       false
     with Invalid_argument _ -> true)

(* brute force: maximum weight over all non-overlapping subsets *)
let brute_best w ms =
  let arr = Array.of_list ms in
  let n = Array.length arr in
  let best = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let subset = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list arr) in
    ignore subset;
    let chosen = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) ms in
    if no_overlap chosen then begin
      let tw = total_weight w chosen in
      if tw > !best then best := tw
    end
  done;
  !best

let arb_spans =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 9)
        (triple (int_bound 30) (int_range 1 8) (int_range 1 10)))
  in
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (s, n, w) -> Printf.sprintf "(%d,%d,%d)" s n w) l))
    gen

let prop_select_optimal =
  QCheck.Test.make ~count:400 ~name:"select matches brute-force optimum"
    arb_spans
    (fun spans ->
      let ms =
        List.map (fun (s, n, w) -> mk_span ~score:(float_of_int w) s n) spans
      in
      let w = Span_select.default_weight in
      let picked = Span_select.select ms in
      no_overlap picked
      && abs_float (total_weight w picked -. brute_best w ms) < 1e-9)

let prop_greedy_nonoverlapping =
  QCheck.Test.make ~count:400 ~name:"greedy picks non-overlapping spans"
    arb_spans
    (fun spans ->
      let ms =
        List.map (fun (s, n, w) -> mk_span ~score:(float_of_int w) s n) spans
      in
      no_overlap (Span_select.greedy_best ms))

let test_default_weight () =
  check_bool "similarity as-is" true
    (Span_select.default_weight (mk_span ~score:0.7 0 1) = 0.7);
  check_bool "distance inverted" true
    (Span_select.default_weight
       { (mk_span 0 1) with Types.c_score = S.Verify.Score.Distance 1 }
    = 0.5)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip_gram () =
  let problem = ed_problem () in
  let dict = Problem.dictionary problem and index = Problem.index problem in
  let data = Codec.encode dict index in
  let dict', index' = Codec.decode data in
  let problem' = Problem.of_index ~sim:(Sim.Edit_distance 2) index' in
  let doc = Problem.tokenize_document problem paper_doc in
  let doc' = Ix.Dictionary.tokenize_document dict' paper_doc in
  Alcotest.(check (list (triple int int int)))
    "same extraction"
    (triples (all_char_matches problem doc))
    (triples (all_char_matches problem' doc'))

let test_codec_roundtrip_word () =
  let problem = Problem.create ~sim:(Sim.Jaccard 0.5) [ "dong xin"; "surajit chaudhuri" ] in
  let data = Codec.encode (Problem.dictionary problem) (Problem.index problem) in
  let _, index' = Codec.decode data in
  let problem' = Problem.of_index ~sim:(Sim.Jaccard 0.5) index' in
  let text = "with dong xin and chaudhuri" in
  let doc = Problem.tokenize_document problem text in
  let doc' = Problem.tokenize_document problem' text in
  Alcotest.(check (list (triple int int int)))
    "same extraction"
    (triples (all_char_matches problem doc))
    (triples (all_char_matches problem' doc'))

let test_codec_save_load_file () =
  let problem = ed_problem () in
  let path = Filename.temp_file "faerie" ".idx" in
  Codec.save (Problem.dictionary problem) (Problem.index problem) path;
  let dict', _ = Codec.load path in
  Sys.remove path;
  check_int "entities preserved" 5 (Ix.Dictionary.size dict')

let test_codec_detects_corruption () =
  let problem = ed_problem () in
  let data = Codec.encode (Problem.dictionary problem) (Problem.index problem) in
  (* Torn-write prefixes surface as [Truncated], everything else as
     [Corrupt]; both must reject the payload. *)
  let expect_corrupt name data =
    check_bool name true
      (try
         ignore (Codec.decode data);
         false
       with Codec.Corrupt _ | Codec.Truncated _ -> true)
  in
  expect_corrupt "bad magic" ("XX" ^ String.sub data 2 (String.length data - 2));
  expect_corrupt "truncated" (String.sub data 0 (String.length data / 2));
  let flipped = Bytes.of_string data in
  let mid = String.length data / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x55));
  expect_corrupt "bit flip" (Bytes.to_string flipped);
  expect_corrupt "trailing garbage" (data ^ "zz");
  expect_corrupt "empty" ""

let test_codec_encoding_is_compact () =
  let problem = ed_problem () in
  let data = Codec.encode (Problem.dictionary problem) (Problem.index problem) in
  (* Well under the naive in-memory footprint. *)
  check_bool "compact" true
    (String.length data
    < Ix.Inverted_index.heap_bytes (Problem.index problem))

(* Torn-write prefixes of a real snapshot file must come back [Truncated]
   (never [Corrupt], never success) all the way through {!Codec.load}. *)
let test_codec_load_truncated_file () =
  let problem = ed_problem () in
  let data = Codec.encode (Problem.dictionary problem) (Problem.index problem) in
  let path = Filename.temp_file "faerie_trunc" ".fx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let n = String.length data in
  List.iter
    (fun len ->
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 len);
      close_out oc;
      let outcome =
        try
          ignore (Codec.load path);
          `Accepted
        with
        | Codec.Truncated _ -> `Truncated
        | Codec.Corrupt _ -> `Corrupt
      in
      (* Prefixes keep the checksum off the end, so every cut below [n]
         must be flagged; cuts inside the postings section specifically
         surface as the torn-write signature. *)
      check_bool (Printf.sprintf "prefix %d rejected" len) true
        (outcome <> `Accepted);
      if len >= n - 4 then
        check_bool
          (Printf.sprintf "prefix %d is Truncated" len)
          true (outcome = `Truncated))
    [ n - 1; n - 2; n - 4; n / 2; n * 3 / 4; 12 ]

(* Hand-crafted v2 payloads: a tiny two-token/two-entity dictionary with a
   postings section written by [mutate], checksummed like the real encoder,
   exercising every block validation branch in the decoder. *)
let craft_v2 mutate =
  let module V = Faerie_util.Varint in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "FAERIEIX";
  V.write buf 2 (* version *);
  V.write buf 0;
  V.write buf 0 (* word mode *);
  V.write buf 2 (* tokens *);
  V.write_string buf "aa";
  V.write_string buf "bb";
  V.write buf 2 (* entities *);
  V.write_string buf "aa";
  V.write buf 1;
  V.write buf 0;
  V.write_string buf "bb";
  V.write buf 1;
  V.write buf 1;
  V.write buf 2 (* posting lists *);
  mutate buf;
  let payload = Buffer.contents buf in
  let out = Buffer.create (String.length payload + 10) in
  Buffer.add_string out payload;
  V.write out (V.fnv1a payload);
  Buffer.contents out

let test_codec_v2_block_validation () =
  let module V = Faerie_util.Varint in
  let singleton buf id =
    V.write buf 1 (* count *);
    V.write buf 1 (* nbytes *);
    V.write buf id
  in
  (* Sanity: the well-formed crafted payload decodes. *)
  let good =
    craft_v2 (fun buf ->
        singleton buf 0;
        singleton buf 1)
  in
  let _, idx = Codec.decode good in
  check_int "crafted postings" 2 (Ix.Inverted_index.n_postings idx);
  let corrupt name data =
    check_bool name true
      (try
         ignore (Codec.decode data);
         false
       with Codec.Corrupt _ -> true)
  in
  corrupt "zero delta is non-ascending"
    (craft_v2 (fun buf ->
         V.write buf 2 (* count *);
         V.write buf 2 (* nbytes *);
         V.write buf 0;
         V.write buf 0 (* delta 0 after first id *);
         singleton buf 1));
  corrupt "block length mismatch"
    (craft_v2 (fun buf ->
         V.write buf 1 (* count *);
         V.write buf 2 (* nbytes, but the one id below is 1 byte *);
         V.write buf 0;
         Buffer.add_char buf '\x00' (* pad so nbytes stays in bounds *);
         singleton buf 1));
  corrupt "count exceeds block"
    (craft_v2 (fun buf ->
         V.write buf 5 (* count *);
         V.write buf 1 (* nbytes *);
         V.write buf 0;
         singleton buf 1));
  corrupt "entity id out of range"
    (craft_v2 (fun buf ->
         singleton buf 7 (* only 2 entities exist *);
         singleton buf 1));
  (* A block length pointing past the end of the input is the torn-write
     signature, even when the overall file still carries trailing bytes. *)
  check_bool "oversized nbytes is Truncated" true
    (try
       ignore
         (Codec.decode
            (craft_v2 (fun buf ->
                 V.write buf 1 (* count *);
                 V.write buf 200 (* nbytes past EOF *);
                 V.write buf 0;
                 singleton buf 1)));
       false
     with Codec.Truncated _ -> true)

(* ------------------------------------------------------------------ *)
(* Chunked extraction                                                  *)
(* ------------------------------------------------------------------ *)

let chunk_string rng s =
  (* random split of s into pieces *)
  let rec loop i acc =
    if i >= String.length s then List.rev acc
    else begin
      let n = min (String.length s - i) (1 + Faerie_util.Xorshift.int rng 7) in
      loop (i + n) (String.sub s i n :: acc)
    end
  in
  loop 0 []

let test_chunked_equals_whole_paper () =
  let problem = ed_problem () in
  let doc = Problem.tokenize_document problem paper_doc in
  let whole = all_char_matches problem doc in
  let rng = Faerie_util.Xorshift.create 7 in
  List.iter
    (fun min_buffer_chars ->
      let pieces = List.to_seq (chunk_string rng paper_doc) in
      let chunked = Chunked.extract_seq ~min_buffer_chars problem pieces in
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "buffer=%d" min_buffer_chars)
        (triples whole) (triples chunked))
    [ 16; 40; 64; 1000 ]

let test_chunked_empty_input () =
  let problem = ed_problem () in
  check_int "no pieces" 0 (List.length (Chunked.extract_seq problem Seq.empty));
  check_int "empty piece" 0
    (List.length (Chunked.extract_seq problem (List.to_seq [ ""; "" ])))

let test_chunked_with_fallback_entities () =
  (* "ab" is shorter than q: found by the fallback path across chunks. *)
  let problem = Problem.create ~sim:(Sim.Edit_distance 0) ~q:4 [ "ab"; "abcdef" ] in
  let text = "zzabzz abcdef zzab" in
  let doc = Problem.tokenize_document problem text in
  let whole = all_char_matches problem doc in
  let chunked =
    Chunked.extract_seq ~min_buffer_chars:8 problem
      (List.to_seq (chunk_string (Faerie_util.Xorshift.create 3) text))
  in
  Alcotest.(check (list (triple int int int))) "equal" (triples whole) (triples chunked)

let gen_word_string n_lo n_hi =
  QCheck.Gen.(
    list_size (int_range n_lo n_hi) (oneofl [ "aa"; "bb"; "cc"; "dd" ])
    |> map (String.concat " "))

let prop_chunked_equals_whole_word =
  QCheck.Test.make ~count:150 ~name:"chunked == whole (token sims)"
    QCheck.(
      make
        ~print:(fun (es, doc, seed) ->
          Printf.sprintf "dict=[%s] doc=%S seed=%d" (String.concat ";" es) doc seed)
        Gen.(
          triple
            (list_size (int_range 1 4) (gen_word_string 1 3))
            (gen_word_string 6 30) (int_bound 1000)))
    (fun (entities, text, seed) ->
      let problem = Problem.create ~sim:(Sim.Jaccard 0.6) entities in
      let doc = Problem.tokenize_document problem text in
      let whole = triples (all_char_matches problem doc) in
      let rng = Faerie_util.Xorshift.create seed in
      let chunked =
        Chunked.extract_seq ~min_buffer_chars:12 problem
          (List.to_seq (chunk_string rng text))
      in
      triples chunked = whole)

let gen_char_string lo hi =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range lo hi))

let prop_chunked_equals_whole_gram =
  QCheck.Test.make ~count:150 ~name:"chunked == whole (edit distance)"
    QCheck.(
      make
        ~print:(fun (es, doc, seed) ->
          Printf.sprintf "dict=[%s] doc=%S seed=%d" (String.concat ";" es) doc seed)
        Gen.(
          triple
            (list_size (int_range 1 4) (gen_char_string 2 8))
            (gen_char_string 10 60) (int_bound 1000)))
    (fun (entities, text, seed) ->
      let problem = Problem.create ~sim:(Sim.Edit_distance 1) ~q:2 entities in
      let doc = Problem.tokenize_document problem text in
      let whole = triples (all_char_matches problem doc) in
      let rng = Faerie_util.Xorshift.create seed in
      let chunked =
        Chunked.extract_seq ~min_buffer_chars:10 problem
          (List.to_seq (chunk_string rng text))
      in
      triples chunked = whole)

let prop_chunked_equals_whole_gram_token_mode =
  QCheck.Test.make ~count:100 ~name:"chunked == whole (dice over grams)"
    QCheck.(
      make
        ~print:(fun (es, doc, seed) ->
          Printf.sprintf "dict=[%s] doc=%S seed=%d" (String.concat ";" es) doc seed)
        Gen.(
          triple
            (list_size (int_range 1 4) (gen_char_string 3 8))
            (gen_char_string 10 50) (int_bound 1000)))
    (fun (entities, text, seed) ->
      let problem =
        Problem.create ~sim:(Sim.Dice 0.8) ~mode:(Tk.Document.Gram 2) entities
      in
      let doc = Problem.tokenize_document problem text in
      let whole = triples (all_char_matches problem doc) in
      let rng = Faerie_util.Xorshift.create seed in
      let chunked =
        Chunked.extract_seq ~min_buffer_chars:10 problem
          (List.to_seq (chunk_string rng text))
      in
      triples chunked = whole)

let test_of_index_mode_mismatch () =
  let problem = Problem.create ~sim:(Sim.Jaccard 0.8) [ "dong xin" ] in
  check_bool "word index rejected for ed" true
    (try
       ignore (Problem.of_index ~sim:(Sim.Edit_distance 1) (Problem.index problem));
       false
     with Invalid_argument _ -> true)

let test_chunked_interleaved_empty_pieces () =
  let problem = ed_problem () in
  let doc = Problem.tokenize_document problem paper_doc in
  let whole = triples (all_char_matches problem doc) in
  (* Split into characters with empty pieces interleaved. *)
  let pieces =
    String.to_seq paper_doc
    |> Seq.concat_map (fun c -> List.to_seq [ ""; String.make 1 c; "" ])
  in
  let chunked = Chunked.extract_seq ~min_buffer_chars:32 problem pieces in
  Alcotest.(check (list (triple int int int))) "equal" whole (triples chunked)

let test_codec_rejects_future_version () =
  (* Header is magic + varint version; bump the version byte. *)
  let problem = ed_problem () in
  let data = Codec.encode (Problem.dictionary problem) (Problem.index problem) in
  let b = Bytes.of_string data in
  Bytes.set b 8 '\x03';
  check_bool "future version rejected" true
    (try
       ignore (Codec.decode (Bytes.to_string b));
       false
     with Codec.Corrupt _ -> true)

let test_select_beats_greedy_total_weight () =
  (* Classic counterexample: one heavy middle span vs two lighter flanks
     whose sum is larger. Greedy keeps the middle; select keeps the pair. *)
  let middle = mk_span ~score:0.6 2 6 in
  let left = mk_span ~score:0.4 0 4 and right = mk_span ~score:0.4 5 4 in
  let w = Span_select.default_weight in
  let opt = total_weight w (Span_select.select [ left; middle; right ]) in
  let greedy = total_weight w (Span_select.greedy_best [ left; middle; right ]) in
  check_bool "optimal >= greedy" true (opt >= greedy);
  Alcotest.(check (float 1e-9)) "optimal picks the flanks" 0.8 opt;
  Alcotest.(check (float 1e-9)) "greedy keeps the middle" 0.6 greedy

let test_topk_pruning_levels_agree () =
  let problem = ed_problem () in
  let doc = Problem.tokenize_document problem paper_doc in
  let reference = triples (Topk.top_k ~k:4 problem doc) in
  List.iter
    (fun pruning ->
      Alcotest.(check (list (triple int int int)))
        (Types.pruning_name pruning) reference
        (triples (Topk.top_k ~pruning ~k:4 problem doc)))
    Types.all_prunings

(* ------------------------------------------------------------------ *)
(* Parallel extraction                                                 *)
(* ------------------------------------------------------------------ *)

let test_parallel_equals_sequential () =
  let corpus = Faerie_datagen.Corpus.dblp ~seed:4 ~n_entities:200 ~n_documents:12 () in
  let problem =
    Problem.create ~sim:(Sim.Edit_distance 2) ~q:3
      (Array.to_list corpus.Faerie_datagen.Corpus.entities)
  in
  let docs =
    Array.map
      (fun d -> d.Faerie_datagen.Corpus.text)
      corpus.Faerie_datagen.Corpus.documents
  in
  let seq = Parallel.extract_all ~domains:1 problem docs in
  let par = Parallel.extract_all ~domains:4 problem docs in
  check_bool "identical per-document results" true (seq = par)

let test_parallel_empty_docs () =
  let problem = ed_problem () in
  check_int "no docs" 0 (Array.length (Parallel.extract_all problem [||]))

(* ------------------------------------------------------------------ *)
(* Ablation variants agree with the defaults                            *)
(* ------------------------------------------------------------------ *)

let test_tournament_merger_same_matches () =
  let problem = ed_problem () in
  let doc = Problem.tokenize_document problem paper_doc in
  let a, _ = Single_heap.run problem doc in
  let b, _ =
    Single_heap.run ~merger:Faerie_heaps.Multiway.Tournament_tree problem doc
  in
  check_bool "equal" true (a = b)

let test_linear_windows_match_binary () =
  let positions = [| 10; 17; 33; 34; 43; 58; 59; 60; 61; 66; 71; 76; 81; 86 |] in
  let collect f =
    let acc = ref [] in
    f ?n:None ~positions ~tl:4 ~upper:10
      ~f:(fun ~first ~last -> acc := (first, last) :: !acc)
      ();
    List.rev !acc
  in
  check_bool "same windows" true
    (collect Windows.iter_windows = collect Windows.iter_windows_linear)

let prop_linear_windows_match_binary =
  QCheck.Test.make ~count:500 ~name:"linear and binary window search agree"
    QCheck.(
      make
        ~print:(fun (ps, tl, upper) ->
          Printf.sprintf "[%s] tl=%d upper=%d"
            (String.concat "," (List.map string_of_int ps))
            tl upper)
        Gen.(
          triple
            (list_size (int_range 1 12) (int_bound 50))
            (int_range 1 5) (int_range 1 12)))
    (fun (ps, tl, upper) ->
      let positions = Array.of_list (List.sort_uniq compare ps) in
      QCheck.assume (Array.length positions >= tl);
      let collect f =
        let acc = ref [] in
        f ?n:None ~positions ~tl ~upper
          ~f:(fun ~first ~last -> acc := (first, last) :: !acc)
          ();
        List.rev !acc
      in
      collect Windows.iter_windows = collect Windows.iter_windows_linear)

let test_multi_heap_algorithms_agree () =
  let problem = ed_problem () in
  let doc = Problem.tokenize_document problem paper_doc in
  let reference, _ = Core.Multi_heap.run problem doc in
  List.iter
    (fun (name, algorithm) ->
      let got, _ = Core.Multi_heap.run ~algorithm problem doc in
      check_bool name true (got = reference))
    [ ("merge_skip", Core.Multi_heap.Merge_skip);
      ("divide_skip", Core.Multi_heap.Divide_skip) ]

let prop_multi_heap_algorithms_agree =
  QCheck.Test.make ~count:100 ~name:"multi-heap skip algorithms == heap count"
    QCheck.(
      make
        ~print:(fun (es, doc) ->
          Printf.sprintf "dict=[%s] doc=%S" (String.concat ";" es) doc)
        Gen.(
          pair (list_size (int_range 1 4) (gen_char_string 2 8)) (gen_char_string 8 25)))
    (fun (entities, text) ->
      let problem = Problem.create ~sim:(Sim.Edit_distance 1) ~q:2 entities in
      let doc = Problem.tokenize_document problem text in
      let reference, _ = Core.Multi_heap.run problem doc in
      List.for_all
        (fun algorithm -> fst (Core.Multi_heap.run ~algorithm problem doc) = reference)
        [ Core.Multi_heap.Merge_skip; Core.Multi_heap.Divide_skip ])

let test_paper_lazy_bound_same_matches () =
  let exact = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let paper =
    Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 ~lazy_bound:`Paper paper_dict
  in
  let de = Problem.tokenize_document exact paper_doc in
  let dp = Problem.tokenize_document paper paper_doc in
  Alcotest.(check (list (triple int int int)))
    "same matches"
    (triples (all_char_matches exact de))
    (triples (all_char_matches paper dp));
  let _, (se : Types.stats) = Single_heap.candidates ~pruning:Types.Binary_window exact de in
  let _, (sp : Types.stats) = Single_heap.candidates ~pruning:Types.Binary_window paper dp in
  check_bool "paper bound never prunes more" true
    (sp.Types.candidates >= se.Types.candidates)

let prop_paper_lazy_bound_equivalent =
  QCheck.Test.make ~count:150 ~name:"`Paper lazy bound: same matches"
    QCheck.(
      make
        ~print:(fun (es, doc) ->
          Printf.sprintf "dict=[%s] doc=%S" (String.concat ";" es) doc)
        Gen.(
          pair (list_size (int_range 1 4) (gen_char_string 2 8)) (gen_char_string 8 30)))
    (fun (entities, text) ->
      let mk lazy_bound =
        let problem = Problem.create ~sim:(Sim.Edit_similarity 0.8) ~q:2 ~lazy_bound entities in
        let doc = Problem.tokenize_document problem text in
        triples (all_char_matches problem doc)
      in
      mk `Exact = mk `Paper)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faerie_extensions"
    [
      ( "topk",
        [
          Alcotest.test_case "best is exact" `Quick test_topk_best_is_exact_match;
          Alcotest.test_case "sorted and bounded" `Quick test_topk_sorted_and_bounded;
          Alcotest.test_case "equals sorted prefix" `Quick test_topk_equals_sorted_prefix;
          Alcotest.test_case "k edge cases" `Quick test_topk_k_zero_and_larger_than_matches;
          Alcotest.test_case "includes fallback" `Quick test_topk_includes_fallback;
          Alcotest.test_case "pruning levels agree" `Quick test_topk_pruning_levels_agree;
          q prop_topk_is_sorted_prefix;
        ] );
      ( "span_select",
        [
          Alcotest.test_case "simple" `Quick test_select_simple;
          Alcotest.test_case "empty" `Quick test_select_empty;
          Alcotest.test_case "touching kept" `Quick test_select_touching_spans_kept;
          Alcotest.test_case "negative weight" `Quick test_select_negative_weight_rejected;
          Alcotest.test_case "default weight" `Quick test_default_weight;
          Alcotest.test_case "select beats greedy" `Quick test_select_beats_greedy_total_weight;
          q prop_select_optimal;
          q prop_greedy_nonoverlapping;
        ] );
      ( "codec",
        [
          Alcotest.test_case "of_index mode mismatch" `Quick test_of_index_mode_mismatch;
          Alcotest.test_case "roundtrip gram" `Quick test_codec_roundtrip_gram;
          Alcotest.test_case "roundtrip word" `Quick test_codec_roundtrip_word;
          Alcotest.test_case "save/load file" `Quick test_codec_save_load_file;
          Alcotest.test_case "detects corruption" `Quick test_codec_detects_corruption;
          Alcotest.test_case "future version" `Quick test_codec_rejects_future_version;
          Alcotest.test_case "compact" `Quick test_codec_encoding_is_compact;
          Alcotest.test_case "truncated file via load" `Quick
            test_codec_load_truncated_file;
          Alcotest.test_case "v2 block validation" `Quick
            test_codec_v2_block_validation;
        ] );
      ( "chunked",
        [
          Alcotest.test_case "equals whole (paper)" `Quick test_chunked_equals_whole_paper;
          Alcotest.test_case "empty input" `Quick test_chunked_empty_input;
          Alcotest.test_case "with fallback entities" `Quick test_chunked_with_fallback_entities;
          Alcotest.test_case "interleaved empty pieces" `Quick test_chunked_interleaved_empty_pieces;
          q prop_chunked_equals_whole_word;
          q prop_chunked_equals_whole_gram;
          q prop_chunked_equals_whole_gram_token_mode;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "equals sequential" `Quick test_parallel_equals_sequential;
          Alcotest.test_case "empty docs" `Quick test_parallel_empty_docs;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "tournament merger" `Quick test_tournament_merger_same_matches;
          Alcotest.test_case "linear windows" `Quick test_linear_windows_match_binary;
          Alcotest.test_case "paper lazy bound" `Quick test_paper_lazy_bound_same_matches;
          Alcotest.test_case "multi-heap algorithms" `Quick test_multi_heap_algorithms_agree;
          q prop_linear_windows_match_binary;
          q prop_paper_lazy_bound_equivalent;
          q prop_multi_heap_algorithms_agree;
        ] );
    ]
