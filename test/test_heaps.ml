(* Tests for Faerie_heaps: binary min-heap and the single-heap multiway
   merge. *)

module Min_heap = Faerie_heaps.Min_heap
module Multiway = Faerie_heaps.Multiway
module Dynarray = Faerie_util.Dynarray
module Xorshift = Faerie_util.Xorshift

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Min_heap                                                            *)
(* ------------------------------------------------------------------ *)

let drain h =
  let rec loop acc =
    match Min_heap.pop h with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  loop []

let test_heap_sorts () =
  let h = Min_heap.create ~cmp:compare () in
  List.iter (Min_heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check (list int)) "heapsort" [ 1; 1; 2; 3; 4; 5; 9 ] (drain h)

let test_heap_peek () =
  let h = Min_heap.create ~cmp:compare () in
  check_bool "empty peek" true (Min_heap.peek h = None);
  Min_heap.push h 3;
  Min_heap.push h 1;
  check_bool "peek min" true (Min_heap.peek h = Some 1);
  check_int "peek does not pop" 2 (Min_heap.length h)

let test_heap_pop_empty () =
  let h : int Min_heap.t = Min_heap.create ~cmp:compare () in
  check_bool "pop empty" true (Min_heap.pop h = None);
  check_bool "pop_exn raises" true
    (try
       ignore (Min_heap.pop_exn h);
       false
     with Invalid_argument _ -> true)

let test_heap_replace_top () =
  let h = Min_heap.create ~cmp:compare () in
  List.iter (Min_heap.push h) [ 2; 5; 7 ];
  Min_heap.replace_top h 6;
  Alcotest.(check (list int)) "replace" [ 5; 6; 7 ] (drain h)

let test_heap_replace_top_empty () =
  let h : int Min_heap.t = Min_heap.create ~cmp:compare () in
  check_bool "raises" true
    (try
       Min_heap.replace_top h 1;
       false
     with Invalid_argument _ -> true)

let test_heap_custom_order () =
  let h = Min_heap.create ~cmp:(fun a b -> compare b a) () in
  List.iter (Min_heap.push h) [ 1; 3; 2 ];
  Alcotest.(check (list int)) "max-heap" [ 3; 2; 1 ] (drain h)

let test_heap_of_array () =
  let h = Min_heap.of_array ~cmp:compare [| 9; 4; 6; 1; 8 |] in
  Alcotest.(check (list int)) "heapify" [ 1; 4; 6; 8; 9 ] (drain h)

let test_heap_clear () =
  let h = Min_heap.create ~cmp:compare () in
  Min_heap.push h 1;
  Min_heap.clear h;
  check_bool "cleared" true (Min_heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~count:300 ~name:"heap drains sorted"
    QCheck.(list small_int)
    (fun l ->
      let h = Min_heap.create ~cmp:compare () in
      List.iter (Min_heap.push h) l;
      drain h = List.sort compare l)

let prop_heapify_equals_pushes =
  QCheck.Test.make ~count:300 ~name:"of_array equals repeated push"
    QCheck.(array small_int)
    (fun a ->
      let h1 = Min_heap.of_array ~cmp:compare a in
      let h2 = Min_heap.create ~cmp:compare () in
      Array.iter (Min_heap.push h2) a;
      drain h1 = drain h2)

let prop_replace_top_is_pop_push =
  QCheck.Test.make ~count:300 ~name:"replace_top == pop;push"
    QCheck.(pair (list small_int) small_int)
    (fun (l, x) ->
      QCheck.assume (l <> []);
      let h1 = Min_heap.create ~cmp:compare () in
      let h2 = Min_heap.create ~cmp:compare () in
      List.iter (Min_heap.push h1) l;
      List.iter (Min_heap.push h2) l;
      Min_heap.replace_top h1 x;
      ignore (Min_heap.pop_exn h2);
      Min_heap.push h2 x;
      drain h1 = drain h2)

(* ------------------------------------------------------------------ *)
(* Multiway                                                            *)
(* ------------------------------------------------------------------ *)

(* Reference: bucket positions per entity with a hashtable. *)
let reference_entity_positions lists =
  let h = Hashtbl.create 16 in
  Array.iteri
    (fun pos l ->
      Array.iter
        (fun e ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt h e) in
          Hashtbl.replace h e (pos :: cur))
        l)
    lists;
  Hashtbl.fold (fun e ps acc -> (e, List.rev ps) :: acc) h []
  |> List.sort compare

(* Flatten per-position lists into the (buf, offs, lens) layout
   [Inverted_index.decode_document] produces. *)
let flatten lists =
  let n = Array.length lists in
  let offs = Array.make n 0 and lens = Array.make n 0 in
  let total = Array.fold_left (fun acc l -> acc + Array.length l) 0 lists in
  let buf = Array.make (max 1 total) 0 in
  let at = ref 0 in
  Array.iteri
    (fun i l ->
      offs.(i) <- !at;
      lens.(i) <- Array.length l;
      Array.blit l 0 buf !at (Array.length l);
      at := !at + Array.length l)
    lists;
  (buf, offs, lens)

let run_multiway ?merger lists =
  let acc = ref [] in
  let buf, offs, lens = flatten lists in
  Multiway.iter_entity_positions ?merger ~n_positions:(Array.length lists)
    ~buf ~offs ~lens
    ~f:(fun ~entity ~positions ~n ->
      acc := (entity, Array.to_list (Array.sub positions 0 n)) :: !acc)
    ();
  List.rev !acc

let test_multiway_basic () =
  let lists = [| [| 1; 4 |]; [||]; [| 1; 3 |]; [| 3 |] |] in
  Alcotest.(check (list (pair int (list int))))
    "merged"
    [ (1, [ 0; 2 ]); (3, [ 2; 3 ]); (4, [ 0 ]) ]
    (run_multiway lists)

let test_multiway_entity_order_ascending () =
  let lists = [| [| 9 |]; [| 2 |]; [| 5 |] |] in
  Alcotest.(check (list int))
    "entities ascend" [ 2; 5; 9 ]
    (List.map fst (run_multiway lists))

let test_multiway_empty () =
  Alcotest.(check (list (pair int (list int)))) "no lists" [] (run_multiway [||]);
  Alcotest.(check (list (pair int (list int))))
    "all empty" []
    (run_multiway [| [||]; [||] |])

let arb_lists =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 12)
        (list_size (int_bound 5) (int_bound 8)
        |> map (fun l -> Array.of_list (List.sort_uniq compare l))))
  in
  QCheck.make
    ~print:(fun ls ->
      String.concat ";"
        (Array.to_list
           (Array.map
              (fun a ->
                "["
                ^ String.concat "," (Array.to_list (Array.map string_of_int a))
                ^ "]")
              ls)))
    (QCheck.Gen.map Array.of_list gen)

let prop_multiway_matches_reference =
  QCheck.Test.make ~count:500 ~name:"multiway merge matches hashtable reference"
    arb_lists
    (fun lists ->
      run_multiway lists = reference_entity_positions lists)

let prop_multiway_scans_once =
  QCheck.Test.make ~count:200 ~name:"heap_stats postings match emitted total"
    arb_lists
    (fun lists ->
      let _, total =
        Multiway.heap_stats ~n_positions:(Array.length lists)
          ~length_at:(fun i -> Array.length lists.(i))
      in
      let emitted =
        List.fold_left
          (fun acc (_, ps) -> acc + List.length ps)
          0 (run_multiway lists)
      in
      total = emitted)

let prop_tournament_equals_binary =
  QCheck.Test.make ~count:500 ~name:"tournament merge == binary-heap merge"
    arb_lists
    (fun lists ->
      run_multiway ~merger:Multiway.Tournament_tree lists = run_multiway lists)

(* ------------------------------------------------------------------ *)
(* Int_heap / Loser_tree                                               *)
(* ------------------------------------------------------------------ *)

module Int_heap = Faerie_heaps.Int_heap
module Loser_tree = Faerie_heaps.Loser_tree

let test_int_heap_sorts () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 4; 1; 7; 1; 0; 9 ];
  let rec drain acc =
    if Int_heap.is_empty h then List.rev acc else drain (Int_heap.pop_exn h :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 4; 7; 9 ] (drain [])

let test_int_heap_replace_top () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 2; 5; 7 ];
  Int_heap.replace_top h 6;
  check_int "new min" 5 (Int_heap.pop_exn h);
  check_int "then 6" 6 (Int_heap.pop_exn h)

let test_int_heap_empty () =
  let h = Int_heap.create () in
  check_bool "pop raises" true
    (try
       ignore (Int_heap.pop_exn h);
       false
     with Invalid_argument _ -> true)

let prop_int_heap_sorts =
  QCheck.Test.make ~count:300 ~name:"int heap drains sorted"
    QCheck.(list small_nat)
    (fun l ->
      let h = Int_heap.create () in
      List.iter (Int_heap.push h) l;
      let rec drain acc =
        if Int_heap.is_empty h then List.rev acc
        else drain (Int_heap.pop_exn h :: acc)
      in
      drain [] = List.sort compare l)

let test_loser_tree_basic () =
  let keys = [| 5; 2; 8; 2 |] in
  let t = Loser_tree.create ~keys in
  check_int "winner is a min slot" 2 keys.(Loser_tree.winner t);
  keys.(Loser_tree.winner t) <- max_int;
  Loser_tree.replay t;
  check_int "next min" 2 keys.(Loser_tree.winner t)

let test_loser_tree_single_leaf () =
  let keys = [| 42 |] in
  let t = Loser_tree.create ~keys in
  check_int "only leaf" 0 (Loser_tree.winner t);
  keys.(0) <- max_int;
  Loser_tree.replay t;
  check_bool "exhausted" true (Loser_tree.exhausted t)

let prop_loser_tree_merges_sorted_streams =
  QCheck.Test.make ~count:300 ~name:"loser tree merges k sorted streams"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (list (int_bound 50)))
    (fun streams ->
      let streams = Array.of_list (List.map (fun l -> Array.of_list (List.sort compare l)) streams) in
      let cursor = Array.make (Array.length streams) 0 in
      let keys =
        Array.map (fun s -> if Array.length s > 0 then s.(0) else max_int) streams
      in
      let t = Loser_tree.create ~keys in
      let out = ref [] in
      while not (Loser_tree.exhausted t) do
        let w = Loser_tree.winner t in
        out := keys.(w) :: !out;
        let i = cursor.(w) + 1 in
        cursor.(w) <- i;
        keys.(w) <- (if i < Array.length streams.(w) then streams.(w).(i) else max_int);
        Loser_tree.replay t
      done;
      let expected =
        Array.to_list streams |> List.concat_map Array.to_list |> List.sort compare
      in
      List.rev !out = expected)

(* ------------------------------------------------------------------ *)
(* Tmerge                                                              *)
(* ------------------------------------------------------------------ *)

module Tmerge = Faerie_heaps.Tmerge

let reference_tcount lists t =
  let h = Hashtbl.create 16 in
  Array.iter
    (Array.iter (fun v ->
         Hashtbl.replace h v (1 + Option.value ~default:0 (Hashtbl.find_opt h v))))
    lists;
  Hashtbl.fold (fun v c acc -> if c >= t then (v, c) :: acc else acc) h []
  |> List.sort compare

let run_tmerge algo lists t =
  let acc = ref [] in
  (match algo with
  | `Count -> Tmerge.merge_count ~lists ~f:(fun v c -> if c >= t then acc := (v, c) :: !acc)
  | `Skip -> Tmerge.merge_skip ~lists ~t ~f:(fun v c -> acc := (v, c) :: !acc)
  | `Divide -> Tmerge.divide_skip ~lists ~t ~f:(fun v c -> acc := (v, c) :: !acc));
  List.sort compare !acc

let test_tmerge_basic () =
  let lists = [| [| 1; 3; 5 |]; [| 1; 2; 5 |]; [| 5; 9 |] |] in
  Alcotest.(check (list (pair int int)))
    "t=2" [ (1, 2); (5, 3) ]
    (run_tmerge `Skip lists 2);
  Alcotest.(check (list (pair int int)))
    "t=3" [ (5, 3) ]
    (run_tmerge `Divide lists 3);
  Alcotest.(check (list (pair int int)))
    "t=1 counts all" [ (1, 2); (2, 1); (3, 1); (5, 3); (9, 1) ]
    (run_tmerge `Count lists 1)

let test_tmerge_t_exceeds_lists () =
  let lists = [| [| 1 |]; [| 1 |] |] in
  Alcotest.(check (list (pair int int))) "t=3 empty" [] (run_tmerge `Skip lists 3);
  Alcotest.(check (list (pair int int))) "t=3 empty (divide)" [] (run_tmerge `Divide lists 3)

let test_tmerge_empty_lists () =
  Alcotest.(check (list (pair int int))) "no lists" [] (run_tmerge `Skip [||] 1);
  Alcotest.(check (list (pair int int)))
    "empty inner" []
    (run_tmerge `Divide [| [||]; [||] |] 1)

(* distinct ascending lists *)
let arb_tmerge_case =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_bound 8)
           (list_size (int_bound 12) (int_bound 25)
           |> map (fun l -> Array.of_list (List.sort_uniq compare l)))
        |> map Array.of_list)
        (int_range 1 6))
  in
  QCheck.make
    ~print:(fun (ls, t) ->
      Printf.sprintf "t=%d lists=%s" t
        (String.concat ";"
           (Array.to_list
              (Array.map
                 (fun a ->
                   "["
                   ^ String.concat ","
                       (Array.to_list (Array.map string_of_int a))
                   ^ "]")
                 ls))))
    gen

let prop_merge_skip_matches_reference =
  QCheck.Test.make ~count:1000 ~name:"MergeSkip matches counting reference"
    arb_tmerge_case
    (fun (lists, t) -> run_tmerge `Skip lists t = reference_tcount lists t)

let prop_divide_skip_matches_reference =
  QCheck.Test.make ~count:1000 ~name:"DivideSkip matches counting reference"
    arb_tmerge_case
    (fun (lists, t) -> run_tmerge `Divide lists t = reference_tcount lists t)

let prop_divide_skip_all_long_counts =
  QCheck.Test.make ~count:500 ~name:"DivideSkip with forced long-list counts"
    arb_tmerge_case
    (fun (lists, t) ->
      let acc = ref [] in
      Tmerge.divide_skip_with ~long_lists:(t - 1) ~lists ~t ~f:(fun v c ->
          acc := (v, c) :: !acc);
      List.sort compare !acc = reference_tcount lists t)

let test_heap_stats () =
  let lists = [| [| 1; 2 |]; [||]; [| 3 |] |] in
  Alcotest.(check (pair int int))
    "stats" (2, 3)
    (Multiway.heap_stats ~n_positions:3 ~length_at:(fun i -> Array.length lists.(i)))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faerie_heaps"
    [
      ( "min_heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
          Alcotest.test_case "replace_top" `Quick test_heap_replace_top;
          Alcotest.test_case "replace_top empty" `Quick test_heap_replace_top_empty;
          Alcotest.test_case "custom order" `Quick test_heap_custom_order;
          Alcotest.test_case "of_array" `Quick test_heap_of_array;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          q prop_heap_sorts;
          q prop_heapify_equals_pushes;
          q prop_replace_top_is_pop_push;
        ] );
      ( "multiway",
        [
          Alcotest.test_case "basic" `Quick test_multiway_basic;
          Alcotest.test_case "ascending entities" `Quick
            test_multiway_entity_order_ascending;
          Alcotest.test_case "empty" `Quick test_multiway_empty;
          Alcotest.test_case "heap stats" `Quick test_heap_stats;
          q prop_multiway_matches_reference;
          q prop_multiway_scans_once;
          q prop_tournament_equals_binary;
        ] );
      ( "int_heap",
        [
          Alcotest.test_case "sorts" `Quick test_int_heap_sorts;
          Alcotest.test_case "replace_top" `Quick test_int_heap_replace_top;
          Alcotest.test_case "empty" `Quick test_int_heap_empty;
          q prop_int_heap_sorts;
        ] );
      ( "tmerge",
        [
          Alcotest.test_case "basic" `Quick test_tmerge_basic;
          Alcotest.test_case "t exceeds lists" `Quick test_tmerge_t_exceeds_lists;
          Alcotest.test_case "empty lists" `Quick test_tmerge_empty_lists;
          q prop_merge_skip_matches_reference;
          q prop_divide_skip_matches_reference;
          q prop_divide_skip_all_long_counts;
        ] );
      ( "loser_tree",
        [
          Alcotest.test_case "basic" `Quick test_loser_tree_basic;
          Alcotest.test_case "single leaf" `Quick test_loser_tree_single_leaf;
          q prop_loser_tree_merges_sorted_streams;
        ] );
    ]
