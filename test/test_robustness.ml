(* Robustness tests: codec corruption fuzzing (decode must fail cleanly,
   never crash, hang or over-allocate), fault-injection containment in the
   parallel pipeline (faulted documents fail in isolation, the rest are
   untouched), and budget-exhaustion degradation (partial results are a
   subset of the full result set). *)

module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Parallel = Core.Parallel
module Outcome = Core.Outcome
module Chunked = Core.Chunked
module Ix = Faerie_index
module Codec = Ix.Codec
module Xorshift = Faerie_util.Xorshift
module Fault = Faerie_util.Fault
module Budget = Faerie_util.Budget
module Varint = Faerie_util.Varint
module Supervisor = Core.Supervisor
module Extractor = Core.Extractor
module Metrics = Faerie_obs.Metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let paper_dict =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let paper_doc =
  "an efficient filter for approximate membership checking. venkaee shga \
   kamunshik kabarati, dong xin, surauijt chadhurisigmod."

let ed_problem () = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict

let triples ms =
  List.map
    (fun (m : Types.char_match) -> (m.Types.c_entity, m.Types.c_start, m.Types.c_len))
    ms

(* ------------------------------------------------------------------ *)
(* Codec corruption                                                    *)
(* ------------------------------------------------------------------ *)

let encoded_index () =
  let problem = ed_problem () in
  Codec.encode (Problem.dictionary problem) (Problem.index problem)

(* A flipped byte can corrupt a value in place (Corrupt) or shorten a
   varint so the input runs out early (Truncated) — both are clean
   rejections; anything else is a bug. *)
let test_codec_flip_fuzz () =
  let data = encoded_index () in
  let rng = Xorshift.create 20260806 in
  let n = String.length data in
  for _ = 1 to 250 do
    let pos = Xorshift.int rng n in
    let delta = 1 + Xorshift.int rng 255 in
    let corrupted =
      String.mapi
        (fun i c -> if i = pos then Char.chr ((Char.code c + delta) land 0xff) else c)
        data
    in
    match Codec.decode corrupted with
    | _ -> Alcotest.failf "decode accepted a corrupted byte at %d" pos
    | exception (Codec.Corrupt _ | Codec.Truncated _) -> ()
  done

let test_codec_truncation_fuzz () =
  let data = encoded_index () in
  let rng = Xorshift.create 424242 in
  for _ = 1 to 250 do
    let len = Xorshift.int rng (String.length data) in
    match Codec.decode (String.sub data 0 len) with
    | _ -> Alcotest.failf "decode accepted a %d-byte truncation" len
    | exception (Codec.Corrupt _ | Codec.Truncated _) -> ()
  done

(* Dropping the final byte always leaves the trailing checksum varint
   unterminated — the canonical torn-write shape — and must be classified
   as Truncated, not Corrupt, with a consistent position report. *)
let test_codec_truncated_classified () =
  let data = encoded_index () in
  let cut = String.length data - 1 in
  match Codec.decode (String.sub data 0 cut) with
  | _ -> Alcotest.fail "decode accepted a torn write"
  | exception Codec.Truncated { at; len } ->
      check_int "reported length" cut len;
      check_bool "position within input" true (at >= 0 && at <= len)
  | exception Codec.Corrupt msg ->
      Alcotest.failf "torn write misclassified as Corrupt: %s" msg

(* An adversarial length field must be rejected up front — not by
   attempting the multi-gigabyte allocation it describes. *)
let test_codec_adversarial_counts () =
  let huge = 1 lsl 40 in
  let header mode_tag q =
    let b = Buffer.create 64 in
    Buffer.add_string b "FAERIEIX";
    Varint.write b 1;
    Varint.write b mode_tag;
    Varint.write b q;
    b
  in
  (* huge token count *)
  let b = header 1 2 in
  Varint.write b huge;
  (match Codec.decode (Buffer.contents b) with
  | _ -> Alcotest.fail "accepted huge token count"
  | exception Codec.Corrupt _ -> ());
  (* huge entity count after a small valid token section *)
  let b = header 1 2 in
  Varint.write b 1;
  Varint.write_string b "ab";
  Varint.write b huge;
  (match Codec.decode (Buffer.contents b) with
  | _ -> Alcotest.fail "accepted huge entity count"
  | exception Codec.Corrupt _ -> ());
  (* huge per-entity token count *)
  let b = header 1 2 in
  Varint.write b 1;
  Varint.write_string b "ab";
  Varint.write b 1;
  Varint.write_string b "ab";
  Varint.write b huge;
  (match Codec.decode (Buffer.contents b) with
  | _ -> Alcotest.fail "accepted huge entity token count"
  | exception Codec.Corrupt _ -> ());
  (* huge postings count *)
  let b = header 1 2 in
  Varint.write b 1;
  Varint.write_string b "ab";
  Varint.write b 1;
  Varint.write_string b "ab";
  Varint.write b 1;
  Varint.write b 0;
  Varint.write b 1;
  Varint.write b huge;
  match Codec.decode (Buffer.contents b) with
  | _ -> Alcotest.fail "accepted huge postings count"
  | exception Codec.Corrupt _ -> ()

let test_codec_roundtrip_still_ok () =
  let data = encoded_index () in
  let dict, index = Codec.decode data in
  check_int "entities survive" (List.length paper_dict) (Ix.Dictionary.size dict);
  check_bool "postings survive" true (Ix.Inverted_index.n_postings index > 0)

let with_temp_dir f =
  let dir = Filename.temp_file "faerie-rob-" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let test_codec_save_atomic_roundtrip () =
  with_temp_dir @@ fun dir ->
  let problem = ed_problem () in
  let path = Filename.concat dir "index.bin" in
  Codec.save (Problem.dictionary problem) (Problem.index problem) path;
  let dict, _ = Codec.load path in
  check_int "entities survive the file" (List.length paper_dict)
    (Ix.Dictionary.size dict);
  check_bool "no temp file left behind" true
    (Array.for_all
       (fun f -> not (String.length f > 4 && String.sub f 0 4 = "inde" && f <> "index.bin"))
       (Sys.readdir dir))

(* Acceptance: a save interrupted in the window between writing the durable
   temp file and renaming it over the snapshot leaves the previous snapshot
   loadable (and the temp file behind, as a real kill would). *)
let test_codec_save_crash_window () =
  with_temp_dir @@ fun dir ->
  let old_problem = ed_problem () in
  let path = Filename.concat dir "index.bin" in
  Codec.save (Problem.dictionary old_problem) (Problem.index old_problem) path;
  let new_problem =
    Problem.create ~sim:(Sim.Edit_distance 1) ~q:2 [ "alpha"; "beta" ]
  in
  Fault.configure { Fault.seed = 1; rates = [ ("codec_rename", 1.0) ] };
  (match
     Fun.protect ~finally:Fault.disarm (fun () ->
         Fault.with_context 0 (fun () ->
             Codec.save (Problem.dictionary new_problem)
               (Problem.index new_problem) path))
   with
  | () -> Alcotest.fail "save should have been killed before the rename"
  | exception Fault.Injected "codec_rename" -> ()
  | exception e -> Alcotest.failf "unexpected: %s" (Printexc.to_string e));
  let dict, _ = Codec.load path in
  check_int "previous snapshot still loadable" (List.length paper_dict)
    (Ix.Dictionary.size dict);
  check_bool "temp file left in the crash window" true
    (Array.exists
       (fun f -> String.length f > 13 && String.sub f 0 14 = "index.bin.tmp.")
       (Sys.readdir dir))

(* ------------------------------------------------------------------ *)
(* Fault containment in the parallel pipeline                          *)
(* ------------------------------------------------------------------ *)

let batch_docs =
  [|
    paper_doc;
    "chaudhuri and chakrabarti wrote about venkatesh";
    "surajit ch spoke; kaushik ch listened";
    "no entities here at all, just plain filler text";
    "venkaee shga kamunshik kabarati again and again";
    "an unrelated sentence about query optimization";
    "chaudhri chadhuri chakrabati misspellings everywhere";
    "the quick brown fox jumps over the lazy dog";
  |]

let test_fault_containment () =
  let problem = ed_problem () in
  Fault.disarm ();
  let clean, clean_summary =
    Parallel.extract_all_outcomes ~domains:4 problem batch_docs
  in
  check_int "clean run: no failures" 0 clean_summary.Outcome.n_failed;
  Fault.reset_counts ();
  Fault.configure
    { Fault.seed = 99; rates = [ ("tokenize", 0.4); ("heap_merge", 0.4) ] };
  let faulted, summary =
    Fun.protect ~finally:Fault.disarm (fun () ->
        Parallel.extract_all_outcomes ~domains:4 problem batch_docs)
  in
  check_int "every injected fault is one failed document"
    (Fault.injected_count ()) summary.Outcome.n_failed;
  check_bool "at least one document faulted" true (summary.Outcome.n_failed > 0);
  check_bool "at least one document survived" true (summary.Outcome.n_ok > 0);
  Array.iteri
    (fun i outcome ->
      match (outcome, clean.(i)) with
      | Outcome.Failed (Outcome.Injected_fault site), _ ->
          check_bool "fault site is a known site" true
            (List.mem site Fault.known_sites)
      | Outcome.Ok got, Outcome.Ok want ->
          check_bool
            (Printf.sprintf "fault-free doc %d identical to clean run" i)
            true (got = want)
      | _ -> Alcotest.failf "unexpected outcome shape for document %d" i)
    faulted

let test_fault_determinism () =
  let problem = ed_problem () in
  let run () =
    Fault.configure
      { Fault.seed = 7; rates = [ ("tokenize", 0.5); ("verify", 0.1) ] };
    Fun.protect ~finally:Fault.disarm (fun () ->
        let outcomes, _ =
          Parallel.extract_all_outcomes ~domains:3 problem batch_docs
        in
        Array.map
          (function
            | Outcome.Failed (Outcome.Injected_fault s) -> "fail:" ^ s
            | Outcome.Ok _ -> "ok"
            | Outcome.Degraded _ -> "degraded"
            | Outcome.Failed _ -> "fail:other")
          outcomes)
  in
  check_bool "same faults on every run (independent of scheduling)" true
    (run () = run ())

let test_faults_inert_when_disarmed () =
  Fault.disarm ();
  let problem = ed_problem () in
  let a = Parallel.extract_all ~domains:1 problem batch_docs in
  let b = Parallel.extract_all ~domains:4 problem batch_docs in
  check_bool "disarmed pipeline unchanged" true (a = b)

let test_worker_crash_contained () =
  (* A genuine crash (not an injected fault) must also be contained: an
     empty q-gram problem cannot be built, so force a crash via a fault
     site raising an unexpected exception is not possible from outside;
     instead check the boundary directly with a budget that trips during
     tokenization-adjacent accounting. Simplest real crash: feed a problem
     whose verify raises via fault injection on the "verify" site and
     confirm the error taxonomy routes it as Injected_fault, then confirm
     Worker_crash shape for a synthetic exception through exn_info_of. *)
  let info = Outcome.exn_info_of (Failure "boom") in
  check_bool "exn name captured" true (info.Outcome.exn_name = "Failure");
  check_bool "message captured" true
    (String.length info.Outcome.message > 0)

(* ------------------------------------------------------------------ *)
(* Supervised serving layer                                            *)
(* ------------------------------------------------------------------ *)

let counter_delta before after name =
  Metrics.counter_value after name - Metrics.counter_value before name

let test_backoff_schedule_deterministic () =
  let retry =
    { Supervisor.retries = 5; backoff_ms = 10; backoff_max_ms = 200; seed = 7 }
  in
  let schedule doc =
    List.init 6 (fun k ->
        Supervisor.backoff_delay_ms retry ~doc_id:doc ~attempt:(k + 1))
  in
  check_bool "same seed, same schedule" true (schedule 3 = schedule 3);
  check_bool "different docs, different schedules" true (schedule 3 <> schedule 4);
  List.iteri
    (fun k d ->
      let window = min 200 (10 * (1 lsl k)) in
      check_bool
        (Printf.sprintf "attempt %d delay %d within [1, %d]" (k + 1) d window)
        true
        (d >= 1 && d <= window))
    (schedule 3);
  let zero =
    { Supervisor.retries = 5; backoff_ms = 0; backoff_max_ms = 200; seed = 7 }
  in
  check_int "backoff_ms = 0 disables sleeping" 0
    (Supervisor.backoff_delay_ms zero ~doc_id:3 ~attempt:4)

(* Worker-death faults with retries: the pool restarts workers and
   re-attempts the documents they held; with a fresh fault key per attempt
   some documents recover to Ok. The whole schedule is deterministic, so
   two identical runs classify every document identically. *)
let test_retry_recovers_and_is_deterministic () =
  let problem = ed_problem () in
  let docs = Array.init 24 (fun i -> batch_docs.(i mod Array.length batch_docs)) in
  let config =
    {
      Supervisor.domains = 2;
      retry = { Supervisor.retries = 2; backoff_ms = 0; backoff_max_ms = 0; seed = 0 };
      queue_capacity = 64;
      quarantine = None;
      shed = false;
      shard = None;
    }
  in
  let classes () =
    Fault.configure
      { Fault.seed = 1234; rates = [ ("supervisor_worker", 0.5) ] };
    let outcomes, summary =
      Fun.protect ~finally:Fault.disarm (fun () ->
          Supervisor.run_batch ~config problem docs)
    in
    (Array.map (fun o -> Outcome.class_name (Outcome.classify o)) outcomes, summary)
  in
  let before = Metrics.snapshot () in
  let first, summary = classes () in
  let after = Metrics.snapshot () in
  check_int "every document accounted for" (Array.length docs)
    summary.Outcome.n_docs;
  check_bool "some documents recovered to Ok" true (summary.Outcome.n_ok > 0);
  check_bool "retries actually happened" true
    (counter_delta before after "doc_retries" > 0);
  check_bool "worker deaths actually happened" true
    (counter_delta before after "worker_restarts" > 0);
  let second, _ = classes () in
  check_bool "identical classification on an identical rerun" true
    (first = second)

let test_quarantine_roundtrip_and_replay () =
  with_temp_dir @@ fun dir ->
  let qfile = Filename.concat dir "quarantine.ndjson" in
  let problem = ed_problem () in
  let ex = Extractor.of_problem problem in
  let config =
    {
      Supervisor.domains = 1;
      retry = { Supervisor.retries = 2; backoff_ms = 0; backoff_max_ms = 0; seed = 0 };
      queue_capacity = 4;
      quarantine = Some qfile;
      shed = false;
      shard = None;
    }
  in
  let fault_cfg =
    { Fault.seed = 42; rates = [ ("supervisor_worker", 1.0) ] }
  in
  Fault.configure fault_cfg;
  let result = ref None in
  Fun.protect ~finally:Fault.disarm (fun () ->
      let pool = Supervisor.create ~config (fun () -> ex) in
      ignore
        (Supervisor.submit pool ~id:"poison" ~doc_id:5 paper_doc
           ~on_done:(fun o -> result := Some o));
      Supervisor.drain pool;
      Supervisor.shutdown pool;
      check_bool "all three attempts died" true
        (Supervisor.worker_restarts pool >= 3));
  (match !result with
  | Some (Outcome.Failed (Outcome.Quarantined { attempts; last })) ->
      check_int "first try + 2 retries" 3 attempts;
      check_bool "last error is the injected site" true
        (last = Outcome.Injected_fault "supervisor_worker")
  | _ -> Alcotest.fail "poison document should be quarantined");
  (* The dead-letter line is a self-contained repro. *)
  let ic = open_in qfile in
  let line = input_line ic in
  close_in ic;
  (match Supervisor.Quarantine.of_json line with
  | Error e -> Alcotest.failf "unparseable quarantine record: %s" e
  | Ok r ->
      check_int "doc id recorded" 5 r.Supervisor.Quarantine.doc_id;
      check_bool "request id recorded" true
        (r.Supervisor.Quarantine.id = Some "poison");
      check_int "attempts recorded" 3 r.Supervisor.Quarantine.attempts;
      check_bool "document text recorded" true
        (r.Supervisor.Quarantine.text = paper_doc);
      check_bool "fault campaign recorded" true
        (r.Supervisor.Quarantine.fault = Some fault_cfg);
      (* In-process replay: re-arm the recorded campaign and re-run the
         document under its original fault key — the failure reproduces. *)
      (match r.Supervisor.Quarantine.fault with
      | Some cfg -> Fault.configure cfg
      | None -> ());
      let reproduced =
        Fun.protect ~finally:Fault.disarm (fun () ->
            match
              Fault.with_context r.Supervisor.Quarantine.doc_id (fun () ->
                  Fault.site "supervisor_worker")
            with
            | () -> false
            | exception Fault.Injected _ -> true)
      in
      check_bool "replay reproduces the recorded failure" true reproduced;
      (* And the record round-trips through its own JSON rendering. *)
      check_bool "to_json/of_json round-trip" true
        (Supervisor.Quarantine.of_json (Supervisor.Quarantine.to_json r) = Ok r))

let test_shed_expired_deadline () =
  let problem = ed_problem () in
  let ex = Extractor.of_problem problem in
  let mk shed =
    {
      Supervisor.domains = 1;
      retry = { Supervisor.retries = 0; backoff_ms = 0; backoff_max_ms = 0; seed = 0 };
      queue_capacity = 4;
      quarantine = None;
      shed;
      shard = None;
    }
  in
  (* Shedding on: a document whose admission deadline already passed is
     refused without being started. *)
  let pool = Supervisor.create ~config:(mk true) (fun () -> ex) in
  let shed_result = ref None in
  ignore
    (Supervisor.submit pool ~doc_id:0 ~deadline_ns:1L paper_doc
       ~on_done:(fun o -> shed_result := Some o));
  Supervisor.drain pool;
  Supervisor.shutdown pool;
  (match !shed_result with
  | Some (Outcome.Failed (Outcome.Shed Outcome.Deadline_expired)) -> ()
  | _ -> Alcotest.fail "expired document should be shed");
  (* Shedding off: the same expired deadline is ignored and the document
     runs to completion. *)
  let pool = Supervisor.create ~config:(mk false) (fun () -> ex) in
  let ok_result = ref None in
  ignore
    (Supervisor.submit pool ~doc_id:0 ~deadline_ns:1L paper_doc
       ~on_done:(fun o -> ok_result := Some o));
  Supervisor.drain pool;
  Supervisor.shutdown pool;
  match !ok_result with
  | Some (Outcome.Ok ms) -> check_bool "matches found" true (ms <> [])
  | _ -> Alcotest.fail "without --shed the document should run"

let test_shed_queue_full_and_shutdown () =
  let problem = ed_problem () in
  let ex = Extractor.of_problem problem in
  (* No workers: the queue never drains, making admission deterministic. *)
  let config =
    {
      Supervisor.domains = 0;
      retry = Supervisor.default_retry;
      queue_capacity = 2;
      quarantine = None;
      shed = true;
      shard = None;
    }
  in
  let before = Metrics.snapshot () in
  let pool = Supervisor.create ~config (fun () -> ex) in
  let outcomes = Array.make 3 None in
  let statuses =
    Array.init 3 (fun i ->
        Supervisor.submit pool ~doc_id:i paper_doc ~on_done:(fun o ->
            outcomes.(i) <- Some o))
  in
  check_bool "first two admitted" true
    (statuses.(0) = `Queued && statuses.(1) = `Queued);
  check_bool "third refused at the full queue" true (statuses.(2) = `Shed);
  (match outcomes.(2) with
  | Some (Outcome.Failed (Outcome.Shed Outcome.Queue_full)) -> ()
  | _ -> Alcotest.fail "refused submit should complete as Shed Queue_full");
  Supervisor.shutdown ~drain:false pool;
  Array.iteri
    (fun i o ->
      if i < 2 then
        match o with
        | Some (Outcome.Failed (Outcome.Shed Outcome.Shutdown)) -> ()
        | _ -> Alcotest.failf "queued doc %d should be shed at shutdown" i)
    outcomes;
  let after = Metrics.snapshot () in
  check_int "docs_shed counts all three" 3
    (counter_delta before after "docs_shed")

(* Acceptance criterion: a fault-injected worker death mid-batch loses no
   documents — every document reaches exactly one of Ok / Degraded /
   Quarantined, at least one worker restarted, and the obs counters agree
   exactly with the summary. *)
let test_zero_lost_documents () =
  with_temp_dir @@ fun dir ->
  let problem = ed_problem () in
  let config =
    {
      Supervisor.domains = 3;
      retry = { Supervisor.retries = 1; backoff_ms = 0; backoff_max_ms = 0; seed = 0 };
      queue_capacity = 8;
      quarantine = Some (Filename.concat dir "q.ndjson");
      shed = false;
      shard = None;
    }
  in
  let before = Metrics.snapshot () in
  Fault.configure { Fault.seed = 77; rates = [ ("supervisor_worker", 0.5) ] };
  let outcomes, summary =
    Fun.protect ~finally:Fault.disarm (fun () ->
        Supervisor.run_batch ~config problem batch_docs)
  in
  let after = Metrics.snapshot () in
  check_int "every document has exactly one outcome"
    (Array.length batch_docs) summary.Outcome.n_docs;
  Array.iteri
    (fun i o ->
      match Outcome.classify o with
      | `Ok | `Degraded | `Quarantined -> ()
      | `Failed | `Shed ->
          Alcotest.failf "document %d lost to the fault campaign (%s)" i
            (Outcome.class_name (Outcome.classify o)))
    outcomes;
  check_int "classes sum to the batch"
    summary.Outcome.n_docs
    (summary.Outcome.n_ok + summary.Outcome.n_degraded
   + summary.Outcome.n_failed + summary.Outcome.n_shed
   + summary.Outcome.n_quarantined);
  check_bool "at least one worker restarted" true
    (counter_delta before after "worker_restarts" >= 1);
  check_int "quarantine counter agrees with the summary"
    summary.Outcome.n_quarantined
    (counter_delta before after "docs_quarantined");
  check_int "nothing shed" 0 (counter_delta before after "docs_shed");
  check_int "no plain failures" 0 summary.Outcome.n_failed

let test_summary_json_and_classes () =
  let outcomes =
    [|
      Outcome.Ok [ 1 ];
      Outcome.Failed (Outcome.Shed Outcome.Queue_full);
      Outcome.Failed
        (Outcome.Quarantined
           { attempts = 3; last = Outcome.Injected_fault "supervisor_worker" });
      Outcome.Failed (Outcome.Tokenize_error "boom");
    |]
  in
  let s = Outcome.summarize outcomes in
  check_int "ok" 1 s.Outcome.n_ok;
  check_int "shed counted apart" 1 s.Outcome.n_shed;
  check_int "quarantined counted apart" 1 s.Outcome.n_quarantined;
  check_int "plain failures only" 1 s.Outcome.n_failed;
  check_int "failures list excludes shed/quarantined" 1
    (List.length s.Outcome.failures);
  Alcotest.(check string)
    "summary JSON shape"
    "{\"docs\":4,\"ok\":1,\"degraded\":0,\"failed\":1,\"shed\":1,\"quarantined\":1,\"elapsed_ns\":0}"
    (Outcome.summary_to_json s)

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

let subset small big =
  List.for_all (fun x -> List.mem x big) small

let test_budget_candidates_degrades_to_subset () =
  let problem = ed_problem () in
  let full =
    match
      Parallel.extract_one_outcome ~doc_id:0 problem paper_doc
    with
    | Outcome.Ok ms -> ms
    | _ -> Alcotest.fail "unbudgeted run should be Ok"
  in
  check_bool "full run finds matches" true (full <> []);
  List.iter
    (fun cap ->
      let budget = { Budget.spec_unlimited with max_candidates = Some cap } in
      match Parallel.extract_one_outcome ~budget ~doc_id:0 problem paper_doc with
      | Outcome.Degraded (ms, Outcome.Partial Budget.Candidates) ->
          check_bool
            (Printf.sprintf "cap %d: degraded results are a subset" cap)
            true
            (subset (triples ms) (triples full))
      | Outcome.Ok ms ->
          (* cap not reached: must be the full result set *)
          check_bool
            (Printf.sprintf "cap %d: uncapped result identical" cap)
            true
            (triples ms = triples full)
      | _ -> Alcotest.failf "cap %d: unexpected outcome" cap)
    [ 0; 1; 5; 20; 100; 1_000_000 ]

let test_budget_oversize_chunked_complete () =
  let problem = ed_problem () in
  let full =
    match Parallel.extract_one_outcome ~doc_id:0 problem paper_doc with
    | Outcome.Ok ms -> ms
    | _ -> Alcotest.fail "unbudgeted run should be Ok"
  in
  let budget = { Budget.spec_unlimited with max_bytes = Some 40 } in
  match Parallel.extract_one_outcome ~budget ~doc_id:0 problem paper_doc with
  | Outcome.Degraded (ms, Outcome.Oversize_chunked { bytes; limit }) ->
      check_int "bytes reported" (String.length paper_doc) bytes;
      check_int "limit reported" 40 limit;
      check_bool "chunked results complete" true (triples ms = triples full)
  | _ -> Alcotest.fail "oversize document should degrade to chunked"

let test_budget_oversize_reject () =
  let problem = ed_problem () in
  let budget = { Budget.spec_unlimited with max_bytes = Some 10 } in
  match
    Parallel.extract_one_outcome ~budget ~oversize:`Reject ~doc_id:0 problem
      paper_doc
  with
  | Outcome.Failed (Outcome.Doc_too_large { limit = 10; _ }) -> ()
  | _ -> Alcotest.fail "oversize document should be rejected"

let test_budget_batch_mixed () =
  (* Budgets in a batch: capped documents degrade, trivial ones stay Ok. *)
  let problem = ed_problem () in
  let docs = [| paper_doc; "nothing to see"; paper_doc |] in
  let budget = { Budget.spec_unlimited with max_candidates = Some 3 } in
  let outcomes, summary =
    Parallel.extract_all_outcomes ~domains:2 ~budget problem docs
  in
  check_int "no failures" 0 summary.Outcome.n_failed;
  check_int "three documents" 3 summary.Outcome.n_docs;
  Array.iter
    (fun o -> check_bool "no outcome lost" true (Outcome.matches o <> None))
    outcomes

let test_budget_deadline_immediate () =
  let b =
    Budget.start { Budget.spec_unlimited with timeout_ms = Some 0 }
  in
  Unix.sleepf 0.002;
  match Budget.check_deadline b with
  | () -> Alcotest.fail "expired deadline should trip"
  | exception Budget.Exhausted Budget.Deadline ->
      check_bool "sticky" true (Budget.exhausted b = Some Budget.Deadline)

let test_budget_deadline_ns () =
  let spec = { Budget.spec_unlimited with timeout_ms = Some 3 } in
  check_bool "deadline is now + timeout" true
    (Budget.deadline_ns spec ~now_ns:1_000L = Some 3_001_000L);
  check_bool "no timeout, no deadline" true
    (Budget.deadline_ns Budget.spec_unlimited ~now_ns:1_000L = None)

let test_budget_unlimited_never_trips () =
  let b = Budget.start Budget.spec_unlimited in
  check_bool "unlimited" true (Budget.is_unlimited b);
  for _ = 1 to 10_000 do
    Budget.charge_candidates b 1;
    Budget.tick b
  done;
  Budget.check_deadline b;
  check_bool "never tripped" true (Budget.exhausted b = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faerie_robustness"
    [
      ( "codec",
        [
          Alcotest.test_case "byte-flip fuzz" `Quick test_codec_flip_fuzz;
          Alcotest.test_case "truncation fuzz" `Quick test_codec_truncation_fuzz;
          Alcotest.test_case "adversarial counts" `Quick
            test_codec_adversarial_counts;
          Alcotest.test_case "torn write -> Truncated" `Quick
            test_codec_truncated_classified;
          Alcotest.test_case "roundtrip unaffected" `Quick
            test_codec_roundtrip_still_ok;
          Alcotest.test_case "atomic save roundtrip" `Quick
            test_codec_save_atomic_roundtrip;
          Alcotest.test_case "crash window keeps old snapshot" `Quick
            test_codec_save_crash_window;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "backoff schedule deterministic" `Quick
            test_backoff_schedule_deterministic;
          Alcotest.test_case "retry recovers, deterministic" `Quick
            test_retry_recovers_and_is_deterministic;
          Alcotest.test_case "quarantine roundtrip + replay" `Quick
            test_quarantine_roundtrip_and_replay;
          Alcotest.test_case "shed expired deadline" `Quick
            test_shed_expired_deadline;
          Alcotest.test_case "shed full queue + shutdown" `Quick
            test_shed_queue_full_and_shutdown;
          Alcotest.test_case "zero lost documents" `Quick
            test_zero_lost_documents;
          Alcotest.test_case "summary classes + JSON" `Quick
            test_summary_json_and_classes;
        ] );
      ( "faults",
        [
          Alcotest.test_case "containment" `Quick test_fault_containment;
          Alcotest.test_case "determinism" `Quick test_fault_determinism;
          Alcotest.test_case "inert when disarmed" `Quick
            test_faults_inert_when_disarmed;
          Alcotest.test_case "exn capture" `Quick test_worker_crash_contained;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "candidate cap -> subset" `Quick
            test_budget_candidates_degrades_to_subset;
          Alcotest.test_case "oversize -> chunked, complete" `Quick
            test_budget_oversize_chunked_complete;
          Alcotest.test_case "oversize -> reject" `Quick
            test_budget_oversize_reject;
          Alcotest.test_case "mixed batch" `Quick test_budget_batch_mixed;
          Alcotest.test_case "deadline trips" `Quick
            test_budget_deadline_immediate;
          Alcotest.test_case "admission deadline arithmetic" `Quick
            test_budget_deadline_ns;
          Alcotest.test_case "unlimited never trips" `Quick
            test_budget_unlimited_never_trips;
        ] );
    ]
