(* Tests for Faerie_index: entities, dictionary, inverted index. *)

module Tk = Faerie_tokenize
module Ix = Faerie_index
module Entity = Ix.Entity
module Dictionary = Ix.Dictionary
module Inverted_index = Ix.Inverted_index

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let paper_entities =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let gram_dict () = Dictionary.create ~mode:(Tk.Document.Gram 2) paper_entities

let word_dict () =
  Dictionary.create ~mode:Tk.Document.Word
    [ "dong xin"; "surajit chaudhuri"; "dong" ]

(* ------------------------------------------------------------------ *)
(* Entity / Dictionary                                                 *)
(* ------------------------------------------------------------------ *)

let test_paper_gram_counts () =
  (* Table 1: |e| with q = 2 is 9, 10, 8, 8, 9. *)
  let d = gram_dict () in
  Alcotest.(check (list int))
    "gram counts" [ 9; 10; 8; 8; 9 ]
    (Array.to_list (Array.map Entity.n_tokens (Dictionary.entities d)))

let test_entity_fields () =
  let d = word_dict () in
  let e = Dictionary.entity d 1 in
  check_str "raw" "surajit chaudhuri" e.Entity.raw;
  check_str "text normalized" "surajit chaudhuri" e.Entity.text;
  check_int "tokens" 2 (Entity.n_tokens e);
  check_int "id" 1 e.Entity.id

let test_entity_sorted_and_distinct () =
  let d =
    Dictionary.create ~mode:Tk.Document.Word [ "b a b" ]
  in
  let e = Dictionary.entity d 0 in
  (* interning order: b = 0, a = 1 *)
  Alcotest.(check (array int)) "sorted multiset" [| 0; 0; 1 |] e.Entity.sorted_tokens;
  Alcotest.(check (array int)) "distinct" [| 0; 1 |] e.Entity.distinct_tokens

let test_dictionary_shared_tokens () =
  let d = word_dict () in
  let e0 = Dictionary.entity d 0 and e2 = Dictionary.entity d 2 in
  check_int "same token id for dong" e0.Entity.tokens.(0) e2.Entity.tokens.(0)

let test_dictionary_unknown_id () =
  let d = word_dict () in
  check_bool "raises" true
    (try
       ignore (Dictionary.entity d 99);
       false
     with Invalid_argument _ -> true)

let test_untokenizable () =
  let d = Dictionary.create ~mode:(Tk.Document.Gram 4) [ "abc"; "abcdef"; "x" ] in
  Alcotest.(check (list int)) "short entities" [ 0; 2 ] (Dictionary.untokenizable d)

let test_untokenizable_empty_in_word_mode () =
  let d = Dictionary.create ~mode:Tk.Document.Word [ "!!!"; "ok" ] in
  Alcotest.(check (list int)) "no-token entity" [ 0 ] (Dictionary.untokenizable d)

let test_max_entity_tokens () =
  let d = gram_dict () in
  check_int "max |e|" 10 (Dictionary.max_entity_tokens d)

let test_tokenize_document_mode () =
  let d = gram_dict () in
  let doc = Dictionary.tokenize_document d "chaudhuri" in
  check_bool "gram mode doc" true (Tk.Document.mode doc = Tk.Document.Gram 2);
  check_int "grams" 8 (Tk.Document.n_tokens doc)

(* ------------------------------------------------------------------ *)
(* Inverted index                                                      *)
(* ------------------------------------------------------------------ *)

let plist idx tok = Inverted_index.Postings.to_array (Inverted_index.postings idx tok)

let test_postings_paper () =
  (* Figure 1: gram "ch" appears in e1, e2, e3, e5 (0-based ids 0,1,2,4);
     gram "ka" in e1, e4 (0-based 0,3); gram "ve" in e4 only. *)
  let d = gram_dict () in
  let idx = Inverted_index.build d in
  let interner = Dictionary.interner d in
  let postings g =
    match Tk.Interner.find_opt interner g with
    | Some tok -> plist idx tok
    | None -> [||]
  in
  Alcotest.(check (array int)) "ch list" [| 0; 1; 2; 4 |] (postings "ch");
  Alcotest.(check (array int)) "ka list" [| 0; 3 |] (postings "ka");
  Alcotest.(check (array int)) "ve list" [| 3 |] (postings "ve")

let test_postings_sorted_dense () =
  let d = gram_dict () in
  let idx = Inverted_index.build d in
  let n = Tk.Interner.size (Dictionary.interner d) in
  for tok = 0 to n - 1 do
    let l = plist idx tok in
    Array.iteri
      (fun i e -> if i > 0 then check_bool "ascending" true (l.(i - 1) < e))
      l
  done

let test_postings_missing_token () =
  let d = gram_dict () in
  let idx = Inverted_index.build d in
  check_bool "missing empty" true
    (Inverted_index.Postings.is_empty (Inverted_index.postings idx Tk.Span.missing));
  Alcotest.(check (array int)) "missing" [||] (plist idx Tk.Span.missing);
  Alcotest.(check (array int)) "out of range" [||] (plist idx 99999)

let test_duplicate_tokens_one_posting () =
  (* An entity with a duplicated token appears once in the list. *)
  let d = Dictionary.create ~mode:Tk.Document.Word [ "a b a" ] in
  let idx = Inverted_index.build d in
  let tok = Option.get (Tk.Interner.find_opt (Dictionary.interner d) "a") in
  Alcotest.(check (array int)) "one posting" [| 0 |] (plist idx tok)

let test_n_postings () =
  let d = Dictionary.create ~mode:Tk.Document.Word [ "a b"; "b c" ] in
  let idx = Inverted_index.build d in
  check_int "postings" 4 (Inverted_index.n_postings idx);
  check_int "lists" 3 (Inverted_index.n_lists idx)

let test_postings_cursor_agrees () =
  (* length/iter/fold are three views of the same block. *)
  let d = gram_dict () in
  let idx = Inverted_index.build d in
  for tok = 0 to Inverted_index.n_tokens idx - 1 do
    let p = Inverted_index.postings idx tok in
    let arr = Inverted_index.Postings.to_array p in
    check_int "length" (Array.length arr) (Inverted_index.Postings.length p);
    let via_iter = ref [] in
    Inverted_index.Postings.iter (fun e -> via_iter := e :: !via_iter) p;
    Alcotest.(check (list int))
      "iter order" (Array.to_list arr)
      (List.rev !via_iter);
    let via_fold =
      Inverted_index.Postings.fold (fun acc e -> e :: acc) [] p
    in
    Alcotest.(check (list int)) "fold order" (Array.to_list arr) (List.rev via_fold)
  done

let test_decode_document () =
  let d = word_dict () in
  let idx = Inverted_index.build d in
  let doc = Dictionary.tokenize_document d "unknown dong" in
  let ws = Inverted_index.Workspace.create () in
  let buf, offs, lens = Inverted_index.decode_document idx ws doc in
  check_int "unknown token empty" 0 lens.(0);
  Alcotest.(check (array int)) "dong in e0,e2" [| 0; 2 |]
    (Array.sub buf offs.(1) lens.(1));
  (* A repeated token decodes to the same (memoized) buffer segment. *)
  let doc2 = Dictionary.tokenize_document d "dong x dong" in
  let buf, offs, lens = Inverted_index.decode_document idx ws doc2 in
  check_int "memoized offset" offs.(0) offs.(2);
  Alcotest.(check (array int)) "repeat decodes alike" [| 0; 2 |]
    (Array.sub buf offs.(2) lens.(2))

let test_blocks_roundtrip () =
  (* raw_blocks → of_blocks reproduces every list, count and size. *)
  let d = gram_dict () in
  let idx = Inverted_index.build d in
  let blob, offs, counts = Inverted_index.raw_blocks idx in
  let idx' = Inverted_index.of_blocks d ~blob ~offs ~counts in
  check_int "n_postings" (Inverted_index.n_postings idx)
    (Inverted_index.n_postings idx');
  check_int "n_lists" (Inverted_index.n_lists idx) (Inverted_index.n_lists idx');
  for tok = 0 to Inverted_index.n_tokens idx - 1 do
    Alcotest.(check (array int)) "list" (plist idx tok) (plist idx' tok)
  done

let test_of_stored_roundtrip () =
  let d = gram_dict () in
  let idx = Inverted_index.build d in
  let lists =
    Array.init (Inverted_index.n_tokens idx) (fun tok -> plist idx tok)
  in
  let idx' = Inverted_index.of_stored d lists in
  check_int "n_postings" (Inverted_index.n_postings idx)
    (Inverted_index.n_postings idx');
  for tok = 0 to Inverted_index.n_tokens idx - 1 do
    Alcotest.(check (array int)) "list" (plist idx tok) (plist idx' tok)
  done

let test_heap_bytes_positive_and_grows () =
  let d1 = Dictionary.create ~mode:(Tk.Document.Gram 2) [ "abcd" ] in
  let d2 = gram_dict () in
  let b1 = Inverted_index.heap_bytes (Inverted_index.build d1) in
  let b2 = Inverted_index.heap_bytes (Inverted_index.build d2) in
  check_bool "positive" true (b1 > 0);
  check_bool "bigger dictionary, bigger index" true (b2 > b1)

(* Every (entity, distinct token) pair is represented exactly once. *)
let prop_index_complete =
  let arb =
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 10)
        (string_gen_of_size (QCheck.Gen.int_range 1 6) (QCheck.Gen.oneofl [ 'a'; 'b'; 'c'; ' ' ])))
  in
  QCheck.Test.make ~count:300 ~name:"inverted index contains exactly the distinct tokens"
    arb
    (fun entities ->
      let d = Dictionary.create ~mode:Tk.Document.Word entities in
      let idx = Inverted_index.build d in
      Array.for_all
        (fun e ->
          Array.for_all
            (fun tok -> Array.mem e.Entity.id (plist idx tok))
            e.Entity.distinct_tokens)
        (Dictionary.entities d)
      &&
      let total_distinct =
        Array.fold_left
          (fun acc e -> acc + Array.length e.Entity.distinct_tokens)
          0 (Dictionary.entities d)
      in
      Inverted_index.n_postings idx = total_distinct)

(* Delta+varint blocks survive a decode→re-adopt round trip verbatim. *)
let prop_blocks_roundtrip =
  let arb =
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 12)
        (string_gen_of_size (QCheck.Gen.int_range 1 8)
           (QCheck.Gen.oneofl [ 'a'; 'b'; 'c'; 'd'; ' ' ])))
  in
  QCheck.Test.make ~count:200 ~name:"posting blocks roundtrip through raw_blocks"
    arb
    (fun entities ->
      let d = Dictionary.create ~mode:Tk.Document.Word entities in
      let idx = Inverted_index.build d in
      let blob, offs, counts = Inverted_index.raw_blocks idx in
      let idx' = Inverted_index.of_blocks d ~blob ~offs ~counts in
      let n = Inverted_index.n_tokens idx in
      Inverted_index.n_tokens idx' = n
      && Inverted_index.n_postings idx' = Inverted_index.n_postings idx
      && Array.for_all
           (fun tok -> plist idx tok = plist idx' tok)
           (Array.init n Fun.id))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faerie_index"
    [
      ( "dictionary",
        [
          Alcotest.test_case "paper gram counts" `Quick test_paper_gram_counts;
          Alcotest.test_case "entity fields" `Quick test_entity_fields;
          Alcotest.test_case "sorted/distinct" `Quick test_entity_sorted_and_distinct;
          Alcotest.test_case "shared tokens" `Quick test_dictionary_shared_tokens;
          Alcotest.test_case "unknown id" `Quick test_dictionary_unknown_id;
          Alcotest.test_case "untokenizable grams" `Quick test_untokenizable;
          Alcotest.test_case "untokenizable words" `Quick
            test_untokenizable_empty_in_word_mode;
          Alcotest.test_case "max tokens" `Quick test_max_entity_tokens;
          Alcotest.test_case "tokenize document" `Quick test_tokenize_document_mode;
        ] );
      ( "inverted_index",
        [
          Alcotest.test_case "paper postings" `Quick test_postings_paper;
          Alcotest.test_case "sorted lists" `Quick test_postings_sorted_dense;
          Alcotest.test_case "missing token" `Quick test_postings_missing_token;
          Alcotest.test_case "duplicate tokens" `Quick test_duplicate_tokens_one_posting;
          Alcotest.test_case "posting counts" `Quick test_n_postings;
          Alcotest.test_case "postings cursor" `Quick test_postings_cursor_agrees;
          Alcotest.test_case "decode document" `Quick test_decode_document;
          Alcotest.test_case "blocks roundtrip" `Quick test_blocks_roundtrip;
          Alcotest.test_case "of_stored roundtrip" `Quick test_of_stored_roundtrip;
          Alcotest.test_case "heap bytes" `Quick test_heap_bytes_positive_and_grows;
          q prop_index_complete;
          q prop_blocks_roundtrip;
        ] );
    ]
