(* Tests for Faerie_sim: edit distance, unified thresholds (Lemmas 1-3),
   verification. *)

module S = Faerie_sim
module Sim = S.Sim
module Ed = S.Edit_distance
module Th = S.Thresholds
module Verify = S.Verify
module Tk = Faerie_tokenize

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Reference edit distance: naive full-matrix DP. *)
let reference_ed r s =
  let m = String.length r and n = String.length s in
  let d = Array.make_matrix (m + 1) (n + 1) 0 in
  for i = 0 to m do
    d.(i).(0) <- i
  done;
  for j = 0 to n do
    d.(0).(j) <- j
  done;
  for i = 1 to m do
    for j = 1 to n do
      let cost = if r.[i - 1] = s.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1)) (d.(i - 1).(j - 1) + cost)
    done
  done;
  d.(m).(n)

(* Multiset q-gram overlap of two strings. *)
let gram_overlap ~q r s =
  let i = Tk.Interner.create () in
  let toks spans = Tk.Token_ops.sorted_of_spans spans in
  Tk.Token_ops.multiset_overlap
    (toks (Tk.Tokenizer.qgrams_intern i ~q r))
    (toks (Tk.Tokenizer.qgrams_intern i ~q s))

let n_grams ~q s = max 0 (String.length s - q + 1)

(* ------------------------------------------------------------------ *)
(* Sim                                                                 *)
(* ------------------------------------------------------------------ *)

let test_sim_validate () =
  Sim.validate (Sim.Jaccard 0.5);
  Sim.validate (Sim.Edit_distance 0);
  check_bool "delta 0 invalid" true
    (try
       Sim.validate (Sim.Dice 0.);
       false
     with Invalid_argument _ -> true);
  check_bool "delta > 1 invalid" true
    (try
       Sim.validate (Sim.Cosine 1.1);
       false
     with Invalid_argument _ -> true);
  check_bool "tau < 0 invalid" true
    (try
       Sim.validate (Sim.Edit_distance (-1));
       false
     with Invalid_argument _ -> true)

let test_sim_char_based () =
  check_bool "ed" true (Sim.char_based (Sim.Edit_distance 1));
  check_bool "eds" true (Sim.char_based (Sim.Edit_similarity 0.9));
  check_bool "jac" false (Sim.char_based (Sim.Jaccard 0.9))

let test_sim_names () =
  Alcotest.(check (list string))
    "names"
    [ "jac"; "cos"; "dice"; "ed"; "eds" ]
    (List.map Sim.name
       [ Sim.Jaccard 0.5; Sim.Cosine 0.5; Sim.Dice 0.5; Sim.Edit_distance 1; Sim.Edit_similarity 0.5 ])

let test_sim_spec_roundtrip () =
  List.iter
    (fun sim ->
      match Sim.of_spec (Sim.to_spec sim) with
      | Ok sim' ->
          check_bool (Printf.sprintf "round-trip %s" (Sim.to_spec sim)) true
            (sim = sim')
      | Error e -> Alcotest.failf "of_spec rejected %s: %s" (Sim.to_spec sim) e)
    [
      Sim.Jaccard 0.8;
      Sim.Cosine 0.75;
      Sim.Dice 0.625;
      Sim.Edit_distance 2;
      Sim.Edit_similarity 0.85;
      (* An awkward float that %.12g must preserve exactly. *)
      Sim.Jaccard 0.7000000000001;
    ]

let test_sim_spec_parses () =
  check_bool "jac" true (Sim.of_spec "jac=0.8" = Ok (Sim.Jaccard 0.8));
  check_bool "ed" true (Sim.of_spec "ed=2" = Ok (Sim.Edit_distance 2));
  List.iter
    (fun bad ->
      match Sim.of_spec bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ ""; "jac"; "jac=x"; "ed=1.5"; "hamming=2"; "jac=0.5=0.5" ]

(* ------------------------------------------------------------------ *)
(* Edit distance                                                       *)
(* ------------------------------------------------------------------ *)

let test_ed_paper_example () =
  (* Section 2.1: ed("surajit", "surauijt") = 2. *)
  check_int "paper pair" 2 (Ed.distance "surajit" "surauijt")

let test_ed_basics () =
  check_int "identical" 0 (Ed.distance "abc" "abc");
  check_int "empty-left" 3 (Ed.distance "" "abc");
  check_int "empty-right" 3 (Ed.distance "abc" "");
  check_int "substitution" 1 (Ed.distance "kitten" "sitten");
  check_int "kitten-sitting" 3 (Ed.distance "kitten" "sitting")

let test_eds_paper_example () =
  (* Section 2.1: eds("surajit", "surauijt") = 1 - 2/8 = 0.75. *)
  Alcotest.(check (float 1e-9)) "eds" 0.75 (Ed.similarity "surajit" "surauijt")

let test_eds_empty () =
  Alcotest.(check (float 1e-9)) "both empty" 1.0 (Ed.similarity "" "")

let test_within () =
  check_bool "within 2" true (Ed.within "surajit" "surauijt" 2);
  check_bool "not within 1" false (Ed.within "surajit" "surauijt" 1);
  check_bool "within 0 identical" true (Ed.within "x" "x" 0);
  check_bool "not within 0" false (Ed.within "x" "y" 0)

let test_distance_upto () =
  check_bool "exact when under cap" true
    (Ed.distance_upto ~cap:5 "kitten" "sitting" = Some 3);
  check_bool "none when over cap" true
    (Ed.distance_upto ~cap:2 "kitten" "sitting" = None);
  check_bool "negative cap" true (Ed.distance_upto ~cap:(-1) "a" "a" = None);
  check_bool "length gap prunes" true
    (Ed.distance_upto ~cap:2 "aaaaaaaa" "a" = None)

let gen_small_string =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_bound 12))

let arb_small_string = QCheck.make ~print:(fun s -> s) gen_small_string

let prop_ed_matches_reference =
  QCheck.Test.make ~count:500 ~name:"distance matches full-matrix reference"
    (QCheck.pair arb_small_string arb_small_string)
    (fun (r, s) -> Ed.distance r s = reference_ed r s)

let prop_ed_symmetric =
  QCheck.Test.make ~count:300 ~name:"distance symmetric"
    (QCheck.pair arb_small_string arb_small_string)
    (fun (r, s) -> Ed.distance r s = Ed.distance s r)

let prop_ed_triangle =
  QCheck.Test.make ~count:200 ~name:"triangle inequality"
    (QCheck.triple arb_small_string arb_small_string arb_small_string)
    (fun (a, b, c) -> Ed.distance a c <= Ed.distance a b + Ed.distance b c)

let prop_distance_upto_agrees =
  QCheck.Test.make ~count:500 ~name:"banded DP agrees with full DP"
    (QCheck.triple arb_small_string arb_small_string (QCheck.int_bound 6))
    (fun (r, s, cap) ->
      let full = Ed.distance r s in
      match Ed.distance_upto ~cap r s with
      | Some d -> d = full && d <= cap
      | None -> full > cap)

(* Differential: the Myers bit-parallel engine, the banded DP and the full
   DP must agree on every input, including tau = 0 and equal strings. *)
let upto_checks (r, s, cap) =
  let full = reference_ed r s in
  let agree = function
    | Some d -> d = full && d <= cap
    | None -> full > cap
  in
  agree (Ed.distance_upto_myers ~cap r s)
  && agree (Ed.distance_upto_banded ~cap r s)
  && Ed.distance_upto_myers ~cap r s = Ed.distance_upto_banded ~cap r s

let prop_myers_matches_banded =
  QCheck.Test.make ~count:1000 ~name:"Myers == banded == full DP"
    (QCheck.triple arb_small_string arb_small_string (QCheck.int_bound 6))
    upto_checks

let prop_myers_tau_zero =
  QCheck.Test.make ~count:500 ~name:"Myers at tau=0 is string equality"
    (QCheck.pair arb_small_string arb_small_string)
    (fun (r, s) ->
      Ed.distance_upto_myers ~cap:0 r s
      = (if r = s then Some 0 else None)
      && Ed.distance_upto_myers ~cap:3 r r = Some 0)

(* Strings straddling the one-word boundary: the shorter side crosses
   [myers_max_len], forcing the banded fallback inside the Myers entry
   point; both engines must keep agreeing there. *)
let gen_long_string =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ])
      (int_range (Ed.myers_max_len - 3) (Ed.myers_max_len + 6)))

let arb_long_string = QCheck.make ~print:(fun s -> s) gen_long_string

let prop_myers_boundary_lengths =
  QCheck.Test.make ~count:400
    ~name:"Myers/banded agree across the word-width fallback boundary"
    (QCheck.triple arb_long_string arb_long_string (QCheck.int_bound 8))
    upto_checks

let test_myers_boundary_exact () =
  (* Deterministic pins at len = myers_max_len and just past it. *)
  List.iter
    (fun n ->
      let a = String.make n 'a' in
      let b = String.make n 'b' in
      let a' = String.init n (fun i -> if i = n / 2 then 'x' else 'a') in
      check_bool
        (Printf.sprintf "equal len %d" n)
        true
        (Ed.distance_upto_myers ~cap:0 a a = Some 0);
      check_bool
        (Printf.sprintf "one sub len %d" n)
        true
        (Ed.distance_upto_myers ~cap:1 a a' = Some 1);
      check_bool
        (Printf.sprintf "all differ len %d" n)
        true
        (Ed.distance_upto_myers ~cap:2 a b = None))
    [ Ed.myers_max_len - 1; Ed.myers_max_len; Ed.myers_max_len + 1;
      Ed.myers_max_len + 5 ]

(* ------------------------------------------------------------------ *)
(* Thresholds: paper's worked examples                                 *)
(* ------------------------------------------------------------------ *)

let test_bounds_paper_eds () =
  (* Section 2.3: e5 = "surajit ch", |e5| = 9, eds delta = 0.8, q = 2:
     lower = 7, upper = 11. *)
  Alcotest.(check (pair int int))
    "e5 bounds" (7, 11)
    (Th.substring_bounds (Sim.Edit_similarity 0.8) ~q:2 ~e_len:9)

let test_bounds_paper_ed () =
  (* Section 4.2: e4 = "venkatesh", |e4| = 8, tau = 2: bounds 6..10. *)
  Alcotest.(check (pair int int))
    "e4 bounds" (6, 10)
    (Th.substring_bounds (Sim.Edit_distance 2) ~q:2 ~e_len:8)

let test_overlap_paper_ed () =
  (* Section 3.1: e5 vs "surauijt ch" (10 grams), tau = 2, q = 2: T = 6. *)
  check_int "T" 6 (Th.overlap (Sim.Edit_distance 2) ~q:2 ~e_len:9 ~s_len:10)

let test_overlap_paper_single_heap () =
  (* Section 3.3: e4 = "venkatesh" (8 grams) vs D[1,9] (9 grams), tau = 2:
     T = 9 - 4 = 5. *)
  check_int "T" 5 (Th.overlap (Sim.Edit_distance 2) ~q:2 ~e_len:8 ~s_len:9)

let test_lazy_paper_ed () =
  (* Section 4.1: |e1| = 9, tau = 1, q = 2 => Tl = 7; |e4| = 8, tau = 2,
     q = 2 => Tl = 4. *)
  check_int "e1 Tl" 7 (Th.lazy_overlap (Sim.Edit_distance 1) ~q:2 ~e_len:9);
  check_int "e4 Tl" 4 (Th.lazy_overlap (Sim.Edit_distance 2) ~q:2 ~e_len:8)

let test_bucket_gap_ed () =
  (* Section 4.1 uses p_{i+1} - p_i - 1 > tau * q to split buckets. *)
  check_int "gap" 2 (Th.bucket_gap (Sim.Edit_distance 1) ~q:2 ~e_len:9)

let test_lower_clamped () =
  let lo, _ = Th.substring_bounds (Sim.Edit_distance 5) ~q:2 ~e_len:3 in
  check_int "lower clamped to 1" 1 lo

(* ------------------------------------------------------------------ *)
(* Thresholds: Lemma 1 / Lemma 2 as properties                          *)
(* ------------------------------------------------------------------ *)

let deltas = [ 0.5; 0.6; 0.75; 0.8; 0.9; 0.95; 1.0 ]

let token_sims =
  List.concat_map (fun d -> [ Sim.Jaccard d; Sim.Cosine d; Sim.Dice d ]) deltas

let arb_token_list =
  QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (int_bound 6))

let sorted_arr l = Array.of_list (List.sort compare l)

let prop_lemma1_token =
  QCheck.Test.make ~count:2000 ~name:"Lemma 1 (token sims): match => overlap >= T"
    (QCheck.pair arb_token_list arb_token_list)
    (fun (e, s) ->
      let e_arr = sorted_arr e and s_arr = sorted_arr s in
      let o = Tk.Token_ops.multiset_overlap e_arr s_arr in
      List.for_all
        (fun sim ->
          let score = Verify.token_score sim ~e_tokens:e_arr ~s_tokens:s_arr in
          (not (Verify.Score.passes sim score))
          || o >= Th.overlap sim ~q:1 ~e_len:(List.length e) ~s_len:(List.length s))
        token_sims)

let prop_lemma2_token =
  QCheck.Test.make ~count:2000 ~name:"Lemma 2 (token sims): match => |s| in bounds"
    (QCheck.pair arb_token_list arb_token_list)
    (fun (e, s) ->
      let e_arr = sorted_arr e and s_arr = sorted_arr s in
      List.for_all
        (fun sim ->
          let score = Verify.token_score sim ~e_tokens:e_arr ~s_tokens:s_arr in
          (not (Verify.Score.passes sim score))
          ||
          let lo, hi = Th.substring_bounds sim ~q:1 ~e_len:(List.length e) in
          let sl = List.length s in
          sl >= lo && sl <= hi)
        token_sims)

let char_settings =
  [
    (2, Sim.Edit_distance 0); (2, Sim.Edit_distance 1); (2, Sim.Edit_distance 2);
    (3, Sim.Edit_distance 1); (3, Sim.Edit_distance 3);
    (2, Sim.Edit_similarity 0.8); (2, Sim.Edit_similarity 0.9);
    (3, Sim.Edit_similarity 0.7); (2, Sim.Edit_similarity 1.0);
  ]

let prop_lemma1_char =
  QCheck.Test.make ~count:2000 ~name:"Lemma 1 (ed/eds): match => gram overlap >= T"
    (QCheck.pair arb_small_string arb_small_string)
    (fun (r, s) ->
      List.for_all
        (fun (q, sim) ->
          let score = Verify.char_score sim ~e_str:r ~s_str:s in
          (not (Verify.Score.passes sim score))
          ||
          let e_len = n_grams ~q r and s_len = n_grams ~q s in
          gram_overlap ~q r s >= Th.overlap sim ~q ~e_len ~s_len)
        char_settings)

let prop_lemma2_char =
  QCheck.Test.make ~count:2000 ~name:"Lemma 2 (ed/eds): match => gram count in bounds"
    (QCheck.pair arb_small_string arb_small_string)
    (fun (r, s) ->
      List.for_all
        (fun (q, sim) ->
          let e_len = n_grams ~q r and s_len = n_grams ~q s in
          if e_len = 0 || s_len = 0 then true
          else begin
            let score = Verify.char_score sim ~e_str:r ~s_str:s in
            (not (Verify.Score.passes sim score))
            ||
            let lo, hi = Th.substring_bounds sim ~q ~e_len in
            s_len >= lo && s_len <= hi
          end)
        char_settings)

let all_sims_with_q = List.map (fun s -> (1, s)) token_sims @ char_settings

let prop_lazy_is_min_of_overlap =
  QCheck.Test.make ~count:500 ~name:"Lemma 3: Tl <= T for every valid length"
    (QCheck.int_range 1 40)
    (fun e_len ->
      List.for_all
        (fun (q, sim) ->
          let tl = Th.lazy_overlap sim ~q ~e_len in
          let lo, hi = Th.substring_bounds sim ~q ~e_len in
          hi < lo
          || List.for_all
               (fun s_len -> tl <= Th.overlap sim ~q ~e_len ~s_len)
               (List.init (hi - lo + 1) (fun i -> lo + i)))
        all_sims_with_q)

let prop_lazy_at_least_paper =
  QCheck.Test.make ~count:500
    ~name:"exact Tl is never looser than the paper's closed form"
    (QCheck.int_range 1 40)
    (fun e_len ->
      List.for_all
        (fun (q, sim) ->
          Th.lazy_overlap sim ~q ~e_len >= Th.lazy_overlap_paper sim ~q ~e_len)
        all_sims_with_q)

let prop_bucket_gap_nonneg_when_feasible =
  QCheck.Test.make ~count:300 ~name:"bucket gap sane"
    (QCheck.int_range 1 40)
    (fun e_len ->
      List.for_all
        (fun (q, sim) ->
          let tl = Th.lazy_overlap sim ~q ~e_len in
          let _, hi = Th.substring_bounds sim ~q ~e_len in
          let gap = Th.bucket_gap sim ~q ~e_len in
          if tl >= 1 && tl <= hi then gap >= 0 else true)
        all_sims_with_q)

(* ------------------------------------------------------------------ *)
(* Verify                                                              *)
(* ------------------------------------------------------------------ *)

let intern_words l =
  let i = Tk.Interner.create () in
  List.map (fun w -> Tk.Interner.intern i w) l |> sorted_arr

let test_verify_paper_token_scores () =
  (* Section 2.1: jac = 2/3, cos = 2/sqrt 6, dice = 4/5 for
     ("sigmod 2011 conference", "sigmod 2011"). *)
  let e = intern_words [ "sigmod"; "2011"; "conference" ] in
  let s = Array.sub e 0 2 in
  let sim_val s' =
    match s' with Verify.Score.Similarity v -> v | _ -> assert false
  in
  Alcotest.(check (float 1e-9))
    "jaccard" (2. /. 3.)
    (sim_val (Verify.token_score (Sim.Jaccard 0.5) ~e_tokens:e ~s_tokens:s));
  Alcotest.(check (float 1e-9))
    "cosine" (2. /. sqrt 6.)
    (sim_val (Verify.token_score (Sim.Cosine 0.5) ~e_tokens:e ~s_tokens:s));
  Alcotest.(check (float 1e-9))
    "dice" 0.8
    (sim_val (Verify.token_score (Sim.Dice 0.5) ~e_tokens:e ~s_tokens:s))

let test_verify_char_scores () =
  check_bool "ed within" true
    (Verify.Score.passes (Sim.Edit_distance 2)
       (Verify.char_score (Sim.Edit_distance 2) ~e_str:"surajit" ~s_str:"surauijt"));
  check_bool "ed beyond" false
    (Verify.Score.passes (Sim.Edit_distance 1)
       (Verify.char_score (Sim.Edit_distance 1) ~e_str:"surajit" ~s_str:"surauijt"));
  check_bool "eds 0.75 passes 0.75" true
    (Verify.Score.passes (Sim.Edit_similarity 0.75)
       (Verify.char_score (Sim.Edit_similarity 0.75) ~e_str:"surajit" ~s_str:"surauijt"));
  check_bool "eds 0.75 fails 0.8" false
    (Verify.Score.passes (Sim.Edit_similarity 0.8)
       (Verify.char_score (Sim.Edit_similarity 0.8) ~e_str:"surajit" ~s_str:"surauijt"))

let test_verify_exact_threshold_one () =
  let e = intern_words [ "a"; "b" ] in
  check_bool "identical multisets pass delta=1" true
    (Verify.Score.passes (Sim.Jaccard 1.0)
       (Verify.token_score (Sim.Jaccard 1.0) ~e_tokens:e ~s_tokens:e))

let test_verify_kind_mismatch () =
  check_bool "token_score rejects ed" true
    (try
       ignore (Verify.token_score (Sim.Edit_distance 1) ~e_tokens:[||] ~s_tokens:[||]);
       false
     with Invalid_argument _ -> true);
  check_bool "char_score rejects jac" true
    (try
       ignore (Verify.char_score (Sim.Jaccard 0.5) ~e_str:"" ~s_str:"");
       false
     with Invalid_argument _ -> true)

let test_score_compare () =
  let open Verify.Score in
  check_bool "higher sim first" true (compare (Similarity 0.9) (Similarity 0.5) < 0);
  check_bool "lower distance first" true (compare (Distance 1) (Distance 3) < 0)

let prop_eds_score_consistent =
  QCheck.Test.make ~count:500
    ~name:"eds char_score matches direct formula when passing"
    (QCheck.pair arb_small_string arb_small_string)
    (fun (r, s) ->
      List.for_all
        (fun d ->
          let sim = Sim.Edit_similarity d in
          let score = Verify.char_score sim ~e_str:r ~s_str:s in
          let direct = Ed.similarity r s in
          match score with
          | Verify.Score.Similarity v ->
              if Verify.Score.passes sim score then abs_float (v -. direct) < 1e-9
              else direct < d +. 1e-9
          | Verify.Score.Distance _ -> false)
        [ 0.5; 0.8; 1.0 ])

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faerie_sim"
    [
      ( "sim",
        [
          Alcotest.test_case "validate" `Quick test_sim_validate;
          Alcotest.test_case "char_based" `Quick test_sim_char_based;
          Alcotest.test_case "names" `Quick test_sim_names;
          Alcotest.test_case "spec roundtrip" `Quick test_sim_spec_roundtrip;
          Alcotest.test_case "spec parses" `Quick test_sim_spec_parses;
        ] );
      ( "edit_distance",
        [
          Alcotest.test_case "paper example" `Quick test_ed_paper_example;
          Alcotest.test_case "basics" `Quick test_ed_basics;
          Alcotest.test_case "eds paper example" `Quick test_eds_paper_example;
          Alcotest.test_case "eds empty" `Quick test_eds_empty;
          Alcotest.test_case "within" `Quick test_within;
          Alcotest.test_case "distance_upto" `Quick test_distance_upto;
          Alcotest.test_case "myers boundary pins" `Quick test_myers_boundary_exact;
          q prop_ed_matches_reference;
          q prop_ed_symmetric;
          q prop_ed_triangle;
          q prop_distance_upto_agrees;
          q prop_myers_matches_banded;
          q prop_myers_tau_zero;
          q prop_myers_boundary_lengths;
        ] );
      ( "thresholds",
        [
          Alcotest.test_case "paper eds bounds" `Quick test_bounds_paper_eds;
          Alcotest.test_case "paper ed bounds" `Quick test_bounds_paper_ed;
          Alcotest.test_case "paper overlap T" `Quick test_overlap_paper_ed;
          Alcotest.test_case "paper single-heap T" `Quick test_overlap_paper_single_heap;
          Alcotest.test_case "paper lazy Tl" `Quick test_lazy_paper_ed;
          Alcotest.test_case "bucket gap ed" `Quick test_bucket_gap_ed;
          Alcotest.test_case "lower clamped" `Quick test_lower_clamped;
          q prop_lemma1_token;
          q prop_lemma2_token;
          q prop_lemma1_char;
          q prop_lemma2_char;
          q prop_lazy_is_min_of_overlap;
          q prop_lazy_at_least_paper;
          q prop_bucket_gap_nonneg_when_feasible;
        ] );
      ( "verify",
        [
          Alcotest.test_case "paper token scores" `Quick test_verify_paper_token_scores;
          Alcotest.test_case "char scores" `Quick test_verify_char_scores;
          Alcotest.test_case "delta=1 exact" `Quick test_verify_exact_threshold_one;
          Alcotest.test_case "kind mismatch" `Quick test_verify_kind_mismatch;
          Alcotest.test_case "score compare" `Quick test_score_compare;
          q prop_eds_score_consistent;
        ] );
    ]
