(* Cluster tests: shard-plan partitioning algebra, the serve-protocol
   wire codecs (lossless outcome transport, versioned frames), the
   length-prefixed frame transport itself (whole-or-nothing delivery
   across pipe scheduling), the multi-process dead-letter sink, and the
   cluster end-to-end properties — shard-count-independent merges under
   fault injection, two-phase generation-consistent reload, and clean
   shutdown semantics.

   The end-to-end tests fork shard processes. Unix.fork refuses in any
   process that has ever created a domain, so nothing in this binary may
   spawn a domain in the parent — the worker pools live inside the forked
   shard children only. *)

module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Types = Core.Types
module Outcome = Core.Outcome
module Supervisor = Core.Supervisor
module Serve_proto = Core.Serve_proto
module Shard_plan = Core.Shard_plan
module Cluster = Core.Cluster
module Extractor = Core.Extractor
module Parallel = Core.Parallel
module Fault = Faerie_util.Fault
module Budget = Faerie_util.Budget
module Xorshift = Faerie_util.Xorshift
module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let paper_dict =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let paper_doc =
  "an efficient filter for approximate membership checking. venkaee shga \
   kamunshik kabarati, dong xin, surauijt chadhurisigmod."

(* ------------------------------------------------------------------ *)
(* Shard_plan                                                          *)
(* ------------------------------------------------------------------ *)

(* Cover [0, n) with disjoint contiguous ranges whose sizes differ by at
   most one, for every (n, shards) shape — the coordinator and offline
   tooling must always agree on ownership. *)
let test_partition_properties () =
  for n = 0 to 23 do
    for shards = 1 to 7 do
      let ranges = Shard_plan.partition ~n_entities:n ~shards in
      check_int "one range per shard" shards (Array.length ranges);
      let total =
        Array.fold_left (fun a r -> a + Shard_plan.width r) 0 ranges
      in
      check_int "ranges cover all entities" n total;
      Array.iteri
        (fun i r ->
          check_bool "non-negative width" true (Shard_plan.width r >= 0);
          if i > 0 then
            check_int "contiguous" ranges.(i - 1).Shard_plan.hi r.Shard_plan.lo)
        ranges;
      let widths = Array.map Shard_plan.width ranges in
      let mx = Array.fold_left max 0 widths in
      let mn = Array.fold_left min max_int widths in
      check_bool "near-equal sizes" true (mx - mn <= 1);
      for e = 0 to n - 1 do
        match Shard_plan.owner ranges e with
        | None -> Alcotest.failf "entity %d unowned (n=%d shards=%d)" e n shards
        | Some s ->
            check_bool "owner range contains entity" true
              (e >= ranges.(s).Shard_plan.lo && e < ranges.(s).Shard_plan.hi)
      done;
      check_bool "out of range unowned" true
        (Shard_plan.owner ranges n = None)
    done
  done;
  Alcotest.check_raises "zero shards rejected"
    (Invalid_argument "Shard_plan.partition: shards must be positive")
    (fun () -> ignore (Shard_plan.partition ~n_entities:5 ~shards:0))

let test_remap () =
  let range = { Shard_plan.lo = 7; hi = 11 } in
  let m l e =
    {
      Types.c_entity = e;
      c_start = l;
      c_len = 3;
      c_score = Faerie_sim.Verify.Score.Distance 1;
    }
  in
  let remapped = Shard_plan.remap_matches ~range [ m 0 0; m 1 3 ] in
  check_int "first remapped" 7 (List.nth remapped 0).Types.c_entity;
  check_int "second remapped" 10 (List.nth remapped 1).Types.c_entity;
  check_int "span untouched" 1 (List.nth remapped 1).Types.c_start

(* ------------------------------------------------------------------ *)
(* Serve_proto codecs                                                  *)
(* ------------------------------------------------------------------ *)

let sample_matches =
  [
    {
      Types.c_entity = 3;
      c_start = 0;
      c_len = 9;
      c_score = Faerie_sim.Verify.Score.Distance 2;
    };
    {
      Types.c_entity = 0;
      c_start = 12;
      c_len = 4;
      c_score = Faerie_sim.Verify.Score.Similarity 0.875;
    };
  ]

let sample_errors =
  [
    Outcome.Doc_too_large { bytes = 9000; limit = 4096 };
    Outcome.Budget_exhausted Budget.Deadline;
    Outcome.Budget_exhausted Budget.Candidates;
    Outcome.Tokenize_error "bad rune";
    Outcome.Corrupt_index "magic mismatch";
    Outcome.Injected_fault "shard_frame";
    Outcome.Worker_crash
      { Outcome.exn_name = "Not_found"; message = "m"; backtrace = "" };
    Outcome.Shed Outcome.Queue_full;
    Outcome.Shed Outcome.Deadline_expired;
    Outcome.Shed Outcome.Shutdown;
    Outcome.Quarantined
      { attempts = 3; last = Outcome.Injected_fault "supervisor_worker" };
  ]

let sample_degradations =
  [
    Outcome.Oversize_chunked { bytes = 10; limit = 5 };
    Outcome.Partial Budget.Bytes;
    Outcome.Shard_partial { n_shards = 4; missing = [ 1; 3 ] };
  ]

(* The coordinator reconstructs outcomes from shard Result frames; every
   constructor in the outcome tree must survive the wire byte-for-byte
   (scores included — a Distance must not come back as a Similarity). *)
let test_outcome_codec_roundtrip () =
  let outcomes =
    [ Outcome.Ok sample_matches; Outcome.Ok [] ]
    @ List.map (fun d -> Outcome.Degraded (sample_matches, d)) sample_degradations
    @ List.map (fun e -> Outcome.Failed e) sample_errors
  in
  List.iter
    (fun out ->
      match Serve_proto.outcome_of_json (Serve_proto.outcome_to_json out) with
      | None -> Alcotest.fail "outcome did not decode"
      | Some back -> check_bool "outcome round-trips" true (back = out))
    outcomes;
  List.iter
    (fun e ->
      match Serve_proto.error_of_json (Serve_proto.error_to_json e) with
      | None -> Alcotest.fail "error did not decode"
      | Some back -> check_bool "error round-trips" true (back = e))
    sample_errors

let test_shard_message_roundtrip () =
  let msgs =
    [
      Serve_proto.Shard.Doc
        {
          doc = 7;
          attempt = 2;
          timeout_ms = Some 250;
          text = "a b c";
          trace = None;
        };
      Serve_proto.Shard.Doc
        { doc = 0; attempt = 0; timeout_ms = None; text = ""; trace = None };
      Serve_proto.Shard.Doc
        {
          doc = 3;
          attempt = 0;
          timeout_ms = None;
          text = "traced";
          trace = Some (4, 2);
        };
      Serve_proto.Shard.Prepare { gen = 3; path = "/tmp/x.faerie" };
      Serve_proto.Shard.Commit { gen = 3 };
      Serve_proto.Shard.Abort { gen = 3 };
      Serve_proto.Shard.Stats_req;
      Serve_proto.Shard.Shutdown;
    ]
  in
  List.iter
    (fun m ->
      match Serve_proto.Shard.(msg_of_string (msg_to_string m)) with
      | Ok back -> check_bool "msg round-trips" true (back = m)
      | Error e -> Alcotest.fail (Serve_proto.parse_error_to_string e))
    msgs;
  let sample_spans =
    [
      {
        Trace.name = "extract";
        start_ns = 9_223_372_036_854_775_000L;
        dur_ns = 12345L;
        depth = 2;
        domain = 1;
        trace = 10;
        ok = true;
        attrs = [ ("doc", "9") ];
      };
      {
        Trace.name = "verify";
        start_ns = 0L;
        dur_ns = 0L;
        depth = 0;
        domain = 0;
        trace = 0;
        ok = false;
        attrs = [];
      };
    ]
  in
  let sample_snapshot =
    {
      Metrics.counters = [ ("docs", 4); ("errors", 0) ];
      gauges =
        [
          ("queue", { Metrics.value = 2.5; agg = `Sum; label = None });
          ( "shard_up_1",
            {
              Metrics.value = 1.;
              agg = `Max;
              label = Some ("shard_up", "shard", "1");
            } );
        ];
      histograms =
        [
          ( "lat",
            {
              Metrics.upper = [| 1.; 10. |];
              counts = [| 3; 0; 1 |];
              sum = 14.5;
              count = 4;
              exemplars = [| (0, 0.); (7, 8.5); (12, 14.5) |];
            } );
          ( "lat_plain",
            {
              Metrics.upper = [| 1. |];
              counts = [| 1; 0 |];
              sum = 0.5;
              count = 1;
              exemplars = [||];
            } );
        ];
    }
  in
  let replies =
    [
      Serve_proto.Shard.Ready { shard = 2; gen = 0; now_ns = 123456789L };
      Serve_proto.Shard.Result
        {
          doc = 9;
          gen = 1;
          outcome = Outcome.Ok sample_matches;
          spans = [];
          stages = [];
        };
      Serve_proto.Shard.Result
        {
          doc = 10;
          gen = 1;
          outcome = Outcome.Ok [];
          spans = sample_spans;
          stages = [ ("tokenize", 1200.); ("verify", 4.5e6) ];
        };
      Serve_proto.Shard.Stats_reply { shard = 2; snapshot = sample_snapshot };
      Serve_proto.Shard.Prepared { gen = 4 };
      Serve_proto.Shard.Prepare_failed { gen = 4; error = "corrupt index: x" };
      Serve_proto.Shard.Committed { gen = 4 };
      Serve_proto.Shard.Aborted { gen = 4 };
      Serve_proto.Shard.Refused { error = "nope" };
      Serve_proto.Shard.Bye { restarts = 5; quarantined = 2 };
    ]
  in
  List.iter
    (fun r ->
      match Serve_proto.Shard.(reply_of_string (reply_to_string r)) with
      | Ok back -> check_bool "reply round-trips" true (back = r)
      | Error e -> Alcotest.fail (Serve_proto.parse_error_to_string e))
    replies

(* Protocol version skew across the coordinator/shard boundary must be a
   structured refusal, not a parse failure or a silent misread. *)
let test_version_mismatch () =
  let good = Serve_proto.Shard.(msg_to_string Shutdown) in
  (match Serve_proto.Shard.msg_of_string good with
  | Ok Serve_proto.Shard.Shutdown -> ()
  | _ -> Alcotest.fail "well-versed frame rejected");
  let skewed =
    Str.replace_first
      (Str.regexp_string (Printf.sprintf "\"v\":%d" Serve_proto.version))
      (Printf.sprintf "\"v\":%d" (Serve_proto.version + 1))
      good
  in
  (match Serve_proto.Shard.msg_of_string skewed with
  | Error (Serve_proto.Version_mismatch { got }) ->
      check_int "mismatch reports peer version" (Serve_proto.version + 1) got
  | _ -> Alcotest.fail "version skew not rejected");
  (match Serve_proto.Shard.msg_of_string {|{"op":"shutdown"}|} with
  | Error (Serve_proto.Malformed _) -> ()
  | _ -> Alcotest.fail "missing version not rejected");
  (* Client-facing responses advertise the version, and a skewed request
     is refused with the structured error body. *)
  let resp =
    Serve_proto.response_json ~ord:0 ~id:None ~gen:0 (Outcome.Ok [])
  in
  check_bool "response carries v" true
    (try
       ignore (Str.search_forward (Str.regexp_string "\"v\":1") resp 0);
       true
     with Not_found -> false);
  match
    Serve_proto.parse_request ~ord:0
      (Printf.sprintf {|{"text":"x","v":%d}|} (Serve_proto.version + 1))
  with
  | Error (Serve_proto.Version_mismatch _) -> ()
  | _ -> Alcotest.fail "request version skew not rejected"

(* ------------------------------------------------------------------ *)
(* Frame transport                                                     *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

(* A frame must arrive whole even when the pipe delivers it a byte at a
   time, and a stream cut mid-frame must read as a clean EOF at the torn
   boundary — the coordinator treats that as a shard death, never as a
   corrupted or truncated payload. *)
let test_frame_split_delivery () =
  let r, w = Unix.pipe ~cloexec:false () in
  let payload = String.concat "," (List.init 64 string_of_int) in
  (* Encode via Frame.write into a scratch pipe to learn the exact bytes. *)
  let sr, sw = Unix.pipe ~cloexec:false () in
  Serve_proto.Frame.write sw payload;
  let encoded = Bytes.create (4 + String.length payload) in
  let n = Unix.read sr encoded 0 (Bytes.length encoded) in
  check_int "scratch read got whole frame" (Bytes.length encoded) n;
  Unix.close sr;
  Unix.close sw;
  let reader = Serve_proto.Frame.reader r in
  (* Dribble the bytes one at a time from a feeder process so the reader
     observes genuinely partial arrivals. *)
  let feeder = Unix.fork () in
  if feeder = 0 then begin
    Unix.close r;
    Bytes.iter
      (fun c ->
        write_all w (String.make 1 c);
        ignore (Unix.select [] [] [] 0.001))
      encoded;
    (* Second frame, then cut the stream mid-header of a third. *)
    Serve_proto.Frame.write w "second";
    write_all w "\x00\x00";
    Unix._exit 0
  end;
  Unix.close w;
  (match Serve_proto.Frame.read reader with
  | `Frame p -> check_string "split frame reassembled" payload p
  | _ -> Alcotest.fail "expected first frame");
  (match Serve_proto.Frame.read reader with
  | `Frame p -> check_string "second frame" "second" p
  | _ -> Alcotest.fail "expected second frame");
  (match Serve_proto.Frame.read reader with
  | `Eof -> ()
  | _ -> Alcotest.fail "torn tail must read as EOF");
  Unix.close r;
  ignore (Unix.waitpid [] feeder)

let test_frame_deadline_and_corrupt () =
  let r, w = Unix.pipe ~cloexec:false () in
  let reader = Serve_proto.Frame.reader r in
  let deadline =
    Int64.add (Faerie_obs.Trace.now_ns ()) (Int64.of_int 20_000_000)
  in
  (match Serve_proto.Frame.read ~deadline_ns:deadline reader with
  | `Timeout -> ()
  | _ -> Alcotest.fail "empty pipe must time out");
  (* An implausible length header is a desynchronized stream, not an
     allocation request. *)
  write_all w "\x7f\xff\xff\xff";
  (match Serve_proto.Frame.read reader with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized header must be Corrupt");
  Unix.close r;
  Unix.close w;
  Alcotest.check_raises "oversize write refused"
    (Invalid_argument
       (Printf.sprintf "Serve_proto.Frame.write: %d-byte frame"
          (Serve_proto.Frame.max_len + 1)))
    (fun () ->
      let r2, w2 = Unix.pipe ~cloexec:false () in
      Fun.protect
        ~finally:(fun () ->
          Unix.close r2;
          Unix.close w2)
        (fun () ->
          Serve_proto.Frame.write w2
            (String.make (Serve_proto.Frame.max_len + 1) 'x')))

(* ------------------------------------------------------------------ *)
(* Quarantine sink                                                     *)
(* ------------------------------------------------------------------ *)

let sample_record ~shard ~doc_id =
  {
    Supervisor.Quarantine.doc_id;
    id = Some "req-1";
    shard;
    attempts = 2;
    error = "worker crashed: Shard_exit";
    sim = Sim.Edit_distance 2;
    q = 2;
    pruning = Types.Binary_window;
    budget = Budget.spec_unlimited;
    fault = Some { Fault.seed = 7; rates = [ ("shard_frame", 0.25) ] };
    gen = 0;
    text = "poison";
  }

(* The shard field must survive the record codec (replay needs to know
   which slice owned the failure), and records written through sinks in
   separate processes appending to one file must come out as whole,
   parseable, never-interleaved lines — that is the O_APPEND +
   single-write(2) contract. *)
let test_sink_multiprocess_append () =
  let path = Filename.temp_file "faerie-test-sink-" ".ndjson" in
  let r = sample_record ~shard:(Some 3) ~doc_id:42 in
  (match Supervisor.Quarantine.(of_json (to_json r)) with
  | Ok back ->
      check_bool "shard field round-trips" true
        (back.Supervisor.Quarantine.shard = Some 3)
  | Error e -> Alcotest.fail e);
  (* No shard -> the pre-cluster record shape, byte-for-byte. *)
  let legacy = Supervisor.Quarantine.to_json (sample_record ~shard:None ~doc_id:1) in
  check_bool "legacy shape has no shard key" true
    (not
       (try
          ignore (Str.search_forward (Str.regexp_string "\"shard\"") legacy 0);
          true
        with Not_found -> false));
  let children =
    List.init 4 (fun child ->
        let pid = Unix.fork () in
        if pid = 0 then begin
          let sink = Supervisor.Quarantine.open_sink path in
          for i = 0 to 24 do
            Supervisor.Quarantine.append sink
              (sample_record ~shard:(Some child) ~doc_id:((child * 1000) + i))
          done;
          Supervisor.Quarantine.close_sink sink;
          Unix._exit 0
        end
        else pid)
  in
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) children;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  check_int "every append is one whole line" 100 (List.length !lines);
  let seen = Hashtbl.create 128 in
  List.iter
    (fun line ->
      match Supervisor.Quarantine.of_json line with
      | Error e -> Alcotest.failf "interleaved/torn record (%s): %s" e line
      | Ok r -> Hashtbl.replace seen r.Supervisor.Quarantine.doc_id ())
    !lines;
  check_int "all 100 distinct records present" 100 (Hashtbl.length seen);
  Sys.remove path

let test_indexed_gauge () =
  let reg = Metrics.create () in
  let g2 = Metrics.indexed_gauge ~registry:reg "test_shard_up" 2 in
  Metrics.set g2 1.;
  let snap = Metrics.snapshot ~registry:reg () in
  check_bool "indexed gauge readable under suffixed name" true
    (Metrics.gauge_value snap "test_shard_up_2" = 1.)

(* ------------------------------------------------------------------ *)
(* Cluster end-to-end                                                  *)
(* ------------------------------------------------------------------ *)

let quiet_stderr f =
  (* Shard restarts log to stderr by design; keep test output readable. *)
  let saved = Unix.dup Unix.stderr in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stderr;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      Unix.dup2 saved Unix.stderr;
      Unix.close saved)
    f

let cluster_config ?(pool_retries = 1) ~shards ~retries () =
  {
    Cluster.default_config with
    Cluster.shards;
    pool =
      {
        Supervisor.domains = 1;
        retry =
          { Supervisor.default_retry with retries = pool_retries; backoff_ms = 0 };
        queue_capacity = 8;
        quarantine = None;
        shed = false;
        shard = None;
      };
    retry = { Supervisor.default_retry with retries; backoff_ms = 0 };
  }

let docs = [| paper_doc; "chaudhuri venkatesh"; ""; "zzz qqq"; paper_doc |]

let clean_baseline () =
  let problem = Core.Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let ex = Extractor.of_problem problem in
  Array.map (fun d -> Parallel.outcome_of_report (Extractor.run ex (`Text d))) docs

(* The tentpole determinism property: the merged match sets must be
   byte-identical whether the dictionary lives in 1 shard or 4 — and
   identical to a single-process run once both sides are span-sorted. *)
let test_merge_determinism_clean () =
  let baseline = clean_baseline () in
  let run shards =
    let outcomes, summary, _ =
      Cluster.run_batch
        ~config:(cluster_config ~shards ~retries:1 ())
        ~sim:(Sim.Edit_distance 2) ~q:2 ~entities:paper_dict docs
    in
    check_int "all docs answered" (Array.length docs) summary.Outcome.n_docs;
    check_int "all ok" (Array.length docs) summary.Outcome.n_ok;
    outcomes
  in
  let one = run 1 and four = run 4 in
  check_bool "1-shard == 4-shard merge" true (one = four);
  Array.iteri
    (fun i out ->
      match (out, baseline.(i)) with
      | Outcome.Ok got, Outcome.Ok want ->
          check_bool "merged == single-process (sorted)" true
            (List.sort compare got = List.sort compare want)
      | _ -> Alcotest.fail "expected Ok on both sides")
    one

(* Same property under injected shard kills at the shard_frame site and
   worker kills inside the shard pools: with enough coordinator retries
   every document must still converge to the exact Ok answer, and the
   kills must actually have happened (restarts observed). *)
let test_merge_determinism_under_faults () =
  quiet_stderr (fun () ->
      let baseline = clean_baseline () in
      Fault.configure
        {
          Fault.seed = 20260809;
          rates = [ ("shard_frame", 0.3); ("supervisor_worker", 0.2) ];
        };
      Fun.protect ~finally:Fault.disarm (fun () ->
          let outcomes, summary, totals =
            Cluster.run_batch
              ~config:(cluster_config ~pool_retries:6 ~shards:4 ~retries:8 ())
              ~sim:(Sim.Edit_distance 2) ~q:2 ~entities:paper_dict docs
          in
          check_int "zero lost documents" (Array.length docs)
            summary.Outcome.n_docs;
          check_int "all converge to ok" (Array.length docs)
            summary.Outcome.n_ok;
          check_bool "shard kills actually happened" true
            (totals.Cluster.shard_restarts > 0);
          Array.iteri
            (fun i out ->
              match (out, baseline.(i)) with
              | Outcome.Ok got, Outcome.Ok want ->
                  check_bool "faulted merge == clean single-process" true
                    (List.sort compare got = List.sort compare want)
              | _ -> Alcotest.fail "expected Ok on both sides")
            outcomes))

(* Two-phase reload: the generation only advances when every shard has
   prepared and committed, and answers are unchanged across the swap. *)
let test_reload_generation () =
  let cluster =
    Cluster.create
      ~config:(cluster_config ~shards:2 ~retries:1 ())
      ~sim:(Sim.Edit_distance 2) ~q:2
      (fun () -> paper_dict)
  in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      check_int "starts at generation 0" 0 (Cluster.generation cluster);
      let before = Cluster.submit cluster ~doc:0 paper_doc in
      (match Cluster.reload cluster with
      | Ok g -> check_int "reload commits generation 1" 1 g
      | Error e -> Alcotest.fail e);
      check_int "generation visible" 1 (Cluster.generation cluster);
      let after = Cluster.submit cluster ~doc:1 paper_doc in
      check_bool "same answers across generations" true (before = after);
      match Cluster.reload cluster with
      | Ok g -> check_int "reload commits generation 2" 2 g
      | Error e -> Alcotest.fail e)

let test_submit_after_shutdown () =
  let cluster =
    Cluster.create
      ~config:(cluster_config ~shards:2 ~retries:1 ())
      ~sim:(Sim.Edit_distance 2) ~q:2
      (fun () -> paper_dict)
  in
  let out = Cluster.submit cluster ~doc:0 "chaudhuri" in
  check_bool "live cluster answers" true
    (match out with Outcome.Ok _ -> true | _ -> false);
  Cluster.shutdown cluster;
  Cluster.shutdown cluster;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Cluster.submit: cluster is shut down") (fun () ->
      ignore (Cluster.submit cluster ~doc:1 "chaudhuri"))

(* ------------------------------------------------------------------ *)
(* Cluster-wide stats aggregation                                      *)
(* ------------------------------------------------------------------ *)

(* The merged snapshot's extraction counters must equal the sum of the
   per-shard pulls: every document fans out to every shard, so each of
   the [shards] processes counts each document once. The coordinator
   contributes registry-only series (shard_up members) to the merge. *)
let test_cluster_stats_merge () =
  Metrics.reset ();
  let shards = 4 in
  let cluster =
    Cluster.create
      ~config:(cluster_config ~shards ~retries:1 ())
      ~sim:(Sim.Edit_distance 2) ~q:2
      (fun () -> paper_dict)
  in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      Array.iteri (fun i d -> ignore (Cluster.submit cluster ~doc:i d)) docs;
      let merged, per_shard = Cluster.stats cluster in
      check_int "one pull per shard" shards (List.length per_shard);
      List.iter
        (fun (sid, snap) ->
          check_bool
            (Printf.sprintf "shard %d snapshot present" sid)
            true (snap <> None))
        per_shard;
      let shard_sum name =
        List.fold_left
          (fun acc (_, snap) ->
            match snap with
            | Some s -> acc + Metrics.counter_value s name
            | None -> acc)
          0 per_shard
      in
      List.iter
        (fun name ->
          check_int
            ("merged counter is the shard sum: " ^ name)
            (shard_sum name)
            (Metrics.counter_value merged name))
        [
          "docs_processed"; "docs_ok"; "tokenize_calls"; "verify_calls";
          "matches_verified";
        ];
      check_int "each shard processed every document"
        (shards * Array.length docs)
        (shard_sum "docs_processed");
      for sid = 0 to shards - 1 do
        check_bool
          (Printf.sprintf "merged snapshot reports shard %d up" sid)
          true
          (Metrics.gauge_value merged (Printf.sprintf "shard_up_%d" sid) = 1.)
      done;
      (* The queue-depth gauge is sampled by the shard stats handler, so
         the member exists in each pull (idle pools report 0). *)
      List.iter
        (fun (sid, snap) ->
          match snap with
          | Some s ->
              check_bool
                (Printf.sprintf "shard %d sampled its queue depth" sid)
                true
                (List.mem_assoc "pool_queue_depth" s.Metrics.gauges)
          | None -> ())
        per_shard)

(* A shard killed by the injected "shard_stats" fault while answering a
   stats pull must surface as a per-shard [None] — partial merge, no
   hang, no exception — and be restarted like any mid-request death.
   Children inherit the armed campaign at fork time (fault state is
   process-local), so replacements spawned while the parent is armed die
   on the next pull too; one flush pull after disarming leaves a fully
   healthy cluster. *)
let test_cluster_stats_partial_on_kill () =
  quiet_stderr (fun () ->
      Fault.configure
        { Fault.seed = 11; rates = [ ("shard_stats", 1.0) ] };
      let cluster =
        Cluster.create
          ~config:
            {
              (cluster_config ~shards:4 ~retries:1 ()) with
              Cluster.shard_timeout_ms = Some 5000;
            }
          ~sim:(Sim.Edit_distance 2) ~q:2
          (fun () -> paper_dict)
      in
      Fun.protect
        ~finally:(fun () ->
          Fault.disarm ();
          Cluster.shutdown cluster)
        (fun () ->
          let merged, per_shard = Cluster.stats cluster in
          List.iter
            (fun (sid, snap) ->
              check_bool
                (Printf.sprintf "killed shard %d flagged as missing" sid)
                true (snap = None))
            per_shard;
          (* The coordinator's own registry still merges. *)
          check_bool "partial merge keeps coordinator series" true
            (Metrics.gauge_value merged "shard_up_0" = 1.);
          let _, healths = Cluster.health cluster in
          List.iter
            (fun h ->
              check_bool "killed shard restarted" true
                (h.Serve_proto.h_up && h.Serve_proto.h_restarts >= 1))
            healths;
          Fault.disarm ();
          (* Replacements forked under the armed campaign die on this
             pull; their successors fork from the now-disarmed parent. *)
          ignore (Cluster.stats cluster);
          let _, per_shard = Cluster.stats cluster in
          List.iter
            (fun (sid, snap) ->
              check_bool
                (Printf.sprintf "shard %d healthy after flush" sid)
                true (snap <> None))
            per_shard;
          match Cluster.submit cluster ~doc:0 paper_doc with
          | Outcome.Ok _ -> ()
          | _ -> Alcotest.fail "cluster must keep serving after stats kills"))

(* ------------------------------------------------------------------ *)
(* Cross-process trace propagation                                     *)
(* ------------------------------------------------------------------ *)

(* A traced document must come back as ONE properly nested span tree:
   the coordinator's cluster_doc root, with each shard's doc_attempt /
   extract_doc subtree grafted inside it (re-based onto the
   coordinator's clock) and tagged with the request's trace id. The
   flame reconstruction is the end-to-end check: every frame's stack
   must bottom out at cluster_doc — shard frames never float as
   separate roots. *)
let test_cluster_trace_propagation () =
  let shards = 2 in
  let cluster =
    Cluster.create
      ~config:(cluster_config ~shards ~retries:1 ())
      ~sim:(Sim.Edit_distance 2) ~q:2
      (fun () -> paper_dict)
  in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      Trace.enable ();
      let out = Cluster.submit cluster ~doc:0 paper_doc in
      Trace.disable ();
      let spans = Trace.drain () in
      (match out with
      | Outcome.Ok _ -> ()
      | _ -> Alcotest.fail "traced document must still extract");
      let root =
        match List.filter (fun s -> s.Trace.name = "cluster_doc") spans with
        | [ r ] -> r
        | l -> Alcotest.failf "expected 1 cluster_doc root, got %d"
                 (List.length l)
      in
      check_int "root at depth 0" 0 root.Trace.depth;
      let attempts =
        List.filter (fun s -> s.Trace.name = "doc_attempt") spans
      in
      check_int "one shard subtree per shard" shards (List.length attempts);
      let tid = 1 (* doc 0 traces as id doc+1 *) in
      List.iter
        (fun s ->
          check_int "shard span tagged with the request trace" tid
            s.Trace.trace;
          check_int "shard subtree nests under the root" 1 s.Trace.depth;
          check_bool "grafted span re-domained to the coordinator" true
            (s.Trace.domain = root.Trace.domain);
          check_bool "grafted span starts inside the root" true
            (s.Trace.start_ns >= root.Trace.start_ns
            && Int64.add s.Trace.start_ns s.Trace.dur_ns
               <= Int64.add root.Trace.start_ns root.Trace.dur_ns))
        attempts;
      check_bool "shard-side extract spans came across" true
        (List.exists
           (fun s -> s.Trace.name = "extract_doc" && s.Trace.trace = tid)
           spans);
      let frames = Faerie_obs.Prof.flame_of_spans spans in
      check_bool "flame built" true (frames <> []);
      List.iter
        (fun f ->
          match f.Faerie_obs.Prof.stack with
          | "cluster_doc" :: _ -> ()
          | stack ->
              Alcotest.failf
                "frame not rooted at cluster_doc: %s"
                (String.concat ";" stack))
        frames)

(* set_clock is process-local state: a shard forked from a coordinator
   running under an injected test clock resets to the real clock
   (shard_main hygiene), and the child's reset must not leak back into
   the parent. This is the raw mechanism the cluster relies on so that
   deterministic-clock tests never contaminate shard timings. *)
let test_clock_isolation_across_fork () =
  let t = ref 0L in
  Trace.set_clock
    (Some
       (fun () ->
         t := Int64.add !t 10L;
         !t));
  Fun.protect
    ~finally:(fun () -> Trace.set_clock None)
    (fun () ->
      let r, w = Unix.pipe ~cloexec:false () in
      let pid = Unix.fork () in
      if pid = 0 then begin
        Unix.close r;
        (* The shard_main hygiene step. *)
        Trace.set_clock None;
        let now = Trace.now_ns () in
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 now;
        write_all w (Bytes.to_string b);
        Unix._exit 0
      end;
      Unix.close w;
      let b = Bytes.create 8 in
      let rec read_all off =
        if off < 8 then read_all (off + Unix.read r b off (8 - off))
      in
      read_all 0;
      Unix.close r;
      ignore (Unix.waitpid [] pid);
      let child_now = Bytes.get_int64_le b 0 in
      check_bool "child reads the real monotonic clock" true
        (Int64.compare child_now 1_000_000L > 0);
      check_bool "parent keeps its injected clock" true
        (Int64.compare (Trace.now_ns ()) 1_000L < 0))

let () =
  Alcotest.run "faerie_cluster"
    [
      ( "shard_plan",
        [
          Alcotest.test_case "partition properties" `Quick
            test_partition_properties;
          Alcotest.test_case "match remapping" `Quick test_remap;
        ] );
      ( "proto",
        [
          Alcotest.test_case "outcome codec roundtrip" `Quick
            test_outcome_codec_roundtrip;
          Alcotest.test_case "shard message roundtrip" `Quick
            test_shard_message_roundtrip;
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
        ] );
      ( "frame",
        [
          Alcotest.test_case "split delivery + torn EOF" `Quick
            test_frame_split_delivery;
          Alcotest.test_case "deadline + corrupt header" `Quick
            test_frame_deadline_and_corrupt;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "multi-process sink append" `Quick
            test_sink_multiprocess_append;
          Alcotest.test_case "indexed gauge" `Quick test_indexed_gauge;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "merge determinism (clean)" `Quick
            test_merge_determinism_clean;
          Alcotest.test_case "merge determinism (faults)" `Quick
            test_merge_determinism_under_faults;
          Alcotest.test_case "two-phase reload" `Quick test_reload_generation;
          Alcotest.test_case "submit after shutdown" `Quick
            test_submit_after_shutdown;
        ] );
      ( "observability",
        [
          Alcotest.test_case "stats merge equals shard sums" `Quick
            test_cluster_stats_merge;
          Alcotest.test_case "stats partial on shard kill" `Quick
            test_cluster_stats_partial_on_kill;
          Alcotest.test_case "cross-process trace propagation" `Quick
            test_cluster_trace_propagation;
          Alcotest.test_case "injected clocks stay process-local" `Quick
            test_clock_isolation_across_fork;
        ] );
    ]
