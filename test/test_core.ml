(* Tests for Faerie_core: counting, buckets, windows, the heap algorithms,
   fallback, extractor — including equivalence with the brute-force oracle. *)

module Tk = Faerie_tokenize
module S = Faerie_sim
module Sim = S.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Counting = Core.Counting
module Position_list = Core.Position_list
module Windows = Core.Windows
module Single_heap = Core.Single_heap
module Multi_heap = Core.Multi_heap
module Fallback = Core.Fallback
module Extractor = Core.Extractor
module Outcome = Core.Outcome
module Naive = Faerie_baselines.Naive

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let paper_dict =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let paper_doc =
  "an efficient filter for approximate membership checking. venkaee shga \
   kamunshik kabarati, dong xin, surauijt chadhurisigmod."

(* ------------------------------------------------------------------ *)
(* Counting                                                            *)
(* ------------------------------------------------------------------ *)

let brute_nonzero ~positions ~first ~last ~len ~n_tokens =
  let acc = ref [] in
  for start = 0 to n_tokens - len do
    let count = ref 0 in
    for i = first to last do
      if positions.(i) >= start && positions.(i) <= start + len - 1 then incr count
    done;
    if !count > 0 then acc := (start, !count) :: !acc
  done;
  List.rev !acc

let run_nonzero ~positions ~first ~last ~len ~n_tokens =
  let acc = ref [] in
  Counting.iter_nonzero ~positions ~first ~last ~len ~n_tokens
    ~f:(fun ~start ~count -> acc := (start, count) :: !acc);
  List.rev !acc

let test_counting_basic () =
  let positions = [| 2; 5; 6 |] in
  Alcotest.(check (list (pair int int)))
    "counts"
    (brute_nonzero ~positions ~first:0 ~last:2 ~len:3 ~n_tokens:10)
    (run_nonzero ~positions ~first:0 ~last:2 ~len:3 ~n_tokens:10)

let test_counting_len_exceeds_doc () =
  Alcotest.(check (list (pair int int)))
    "empty" []
    (run_nonzero ~positions:[| 0 |] ~first:0 ~last:0 ~len:5 ~n_tokens:3)

let test_counting_slice () =
  let positions = [| 1; 4; 9 |] in
  Alcotest.(check (list (pair int int)))
    "middle slice only"
    (brute_nonzero ~positions ~first:1 ~last:1 ~len:2 ~n_tokens:12)
    (run_nonzero ~positions ~first:1 ~last:1 ~len:2 ~n_tokens:12)

let arb_positions_case =
  let gen =
    QCheck.Gen.(
      int_range 1 30 >>= fun n_tokens ->
      list_size (int_range 1 8) (int_bound (n_tokens - 1)) >>= fun ps ->
      let ps = List.sort_uniq compare ps in
      int_range 1 (n_tokens + 2) >>= fun len ->
      return (Array.of_list ps, len, n_tokens))
  in
  QCheck.make
    ~print:(fun (ps, len, n) ->
      Printf.sprintf "positions=[%s] len=%d n=%d"
        (String.concat "," (Array.to_list (Array.map string_of_int ps)))
        len n)
    gen

let prop_counting_matches_brute =
  QCheck.Test.make ~count:1000 ~name:"iter_nonzero matches brute force"
    arb_positions_case
    (fun (positions, len, n_tokens) ->
      let last = Array.length positions - 1 in
      run_nonzero ~positions ~first:0 ~last ~len ~n_tokens
      = brute_nonzero ~positions ~first:0 ~last ~len ~n_tokens)

(* ------------------------------------------------------------------ *)
(* Position_list                                                       *)
(* ------------------------------------------------------------------ *)

let test_buckets_paper () =
  (* Section 4.1: Pe4 = [1,2,3,4,9,14,19] (1-based), tau = 1, q = 2 =>
     gap = 2; buckets [1..4], [9], [14], [19]. *)
  let positions = [| 1; 2; 3; 4; 9; 14; 19 |] in
  Alcotest.(check (list (pair int int)))
    "paper buckets"
    [ (0, 3); (4, 4); (5, 5); (6, 6) ]
    (Position_list.buckets ~positions ~gap:2 ())

let test_buckets_single () =
  Alcotest.(check (list (pair int int)))
    "one bucket" [ (0, 2) ]
    (Position_list.buckets ~positions:[| 5; 6; 7 |] ~gap:0 ())

let test_buckets_empty () =
  Alcotest.(check (list (pair int int))) "empty" [] (Position_list.buckets ~positions:[||] ~gap:3 ())

let test_buckets_negative_gap () =
  Alcotest.(check (list (pair int int)))
    "singletons"
    [ (0, 0); (1, 1); (2, 2) ]
    (Position_list.buckets ~positions:[| 1; 2; 3 |] ~gap:(-1) ())

let prop_buckets_partition =
  QCheck.Test.make ~count:500 ~name:"buckets partition the list respecting gaps"
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_bound 10) (QCheck.int_bound 40))
       (QCheck.int_range 0 5))
    (fun (ps, gap) ->
      let positions = Array.of_list (List.sort_uniq compare ps) in
      let bs = Position_list.buckets ~positions ~gap () in
      let m = Array.length positions in
      (* Contiguous cover of 0..m-1. *)
      let covered =
        List.fold_left
          (fun expect (first, last) ->
            if expect = first && last >= first then last + 1 else -1000)
          0 bs
      in
      (m = 0 && bs = [])
      || (covered = m
         && List.for_all
              (fun (first, last) ->
                (* inside a bucket all gaps <= gap *)
                let ok_inside = ref true in
                for i = first to last - 1 do
                  if positions.(i + 1) - positions.(i) - 1 > gap then
                    ok_inside := false
                done;
                !ok_inside)
              bs
         &&
         (* boundaries have gap > gap *)
         let rec boundaries = function
           | (_, l1) :: ((f2, _) :: _ as rest) ->
               positions.(f2) - positions.(l1) - 1 > gap && boundaries rest
           | _ -> true
         in
         boundaries bs))

let test_count_in_range () =
  let positions = [| 2; 4; 4 + 3; 15 |] in
  check_int "inside" 2 (Position_list.count_in_range ~positions ~lo:3 ~hi:8);
  check_int "all" 4 (Position_list.count_in_range ~positions ~lo:0 ~hi:20);
  check_int "none" 0 (Position_list.count_in_range ~positions ~lo:16 ~hi:20);
  check_int "inverted" 0 (Position_list.count_in_range ~positions ~lo:5 ~hi:4)

(* ------------------------------------------------------------------ *)
(* Windows                                                             *)
(* ------------------------------------------------------------------ *)

let paper_pe4 = [| 10; 17; 33; 34; 43; 58; 59; 60; 61; 66; 71; 76; 81; 86 |]

let collect_windows ~positions ~tl ~upper =
  let acc = ref [] in
  Windows.iter_windows ~positions ~tl ~upper
    ~f:(fun ~first ~last -> acc := (first, last) :: !acc)
    ();
  List.rev !acc

let test_windows_paper_example () =
  (* Section 4.2 / Fig. 10: tau = 2, Tl = 4, upper = 10; the only windows
     that survive start at (1-based) 6 and 7 — 0-based 5 and 6 — both
     extending to index 9 (position 66). *)
  Alcotest.(check (list (pair int int)))
    "paper windows"
    [ (5, 9); (6, 9) ]
    (collect_windows ~positions:paper_pe4 ~tl:4 ~upper:10)

let test_windows_tl_greater_than_upper () =
  Alcotest.(check (list (pair int int)))
    "infeasible" []
    (collect_windows ~positions:paper_pe4 ~tl:11 ~upper:10)

let test_windows_all_feasible () =
  let positions = [| 3; 4; 5; 6 |] in
  Alcotest.(check (list (pair int int)))
    "every start"
    [ (0, 3); (1, 3); (2, 3) ]
    (collect_windows ~positions ~tl:2 ~upper:10)

let reference_windows ~positions ~tl ~upper =
  let m = Array.length positions in
  let acc = ref [] in
  if tl <= upper then
    for i = 0 to m - tl do
      if positions.(i + tl - 1) - positions.(i) + 1 <= upper then begin
        (* last x with span <= upper *)
        let x = ref (i + tl - 1) in
        while !x + 1 < m && positions.(!x + 1) - positions.(i) + 1 <= upper do
          incr x
        done;
        acc := (i, !x) :: !acc
      end
    done;
  List.rev !acc

let arb_window_case =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 14) (int_bound 60) >>= fun ps ->
      let ps = List.sort_uniq compare ps in
      int_range 1 6 >>= fun tl ->
      int_range 1 15 >>= fun upper ->
      return (Array.of_list ps, tl, upper))
  in
  QCheck.make
    ~print:(fun (ps, tl, upper) ->
      Printf.sprintf "positions=[%s] tl=%d upper=%d"
        (String.concat "," (Array.to_list (Array.map string_of_int ps)))
        tl upper)
    gen

let prop_windows_match_reference =
  QCheck.Test.make ~count:1000 ~name:"binary span/shift matches linear reference"
    arb_window_case
    (fun (positions, tl, upper) ->
      QCheck.assume (Array.length positions >= tl);
      collect_windows ~positions ~tl ~upper
      = reference_windows ~positions ~tl ~upper)

let test_binary_span_paper () =
  (* Fig. 8: spanning from index 5 (1-based 6) reaches index 9 (position
     66) since p10 - p6 + 1 = 9 <= 10 and p11 - p6 + 1 = 14 > 10. *)
  check_int "span" 9 (Windows.binary_span ~positions:paper_pe4 ~upper:10 5)

let test_binary_shift_skips () =
  (* Fig. 10: shifting from window start 0 jumps directly past starts 1-2. *)
  let i = Windows.binary_shift ~positions:paper_pe4 ~tl:4 ~upper:10 0 in
  check_bool "jumps at least to 2" true (i >= 2)

(* ------------------------------------------------------------------ *)
(* Problem classification                                              *)
(* ------------------------------------------------------------------ *)

let test_problem_paths () =
  let p = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 [ "chaudhuri"; "a"; "abc" ] in
  check_bool "normal entity indexed" true
    ((Problem.info p 0).Problem.path = Problem.Indexed);
  check_bool "sub-q entity on fallback" true
    ((Problem.info p 1).Problem.path = Problem.Fallback);
  (* "abc": 2 grams, tl = 2 - 4 <= 0 -> fallback *)
  check_bool "vacuous filter on fallback" true
    ((Problem.info p 2).Problem.path = Problem.Fallback)

let test_problem_word_empty_entity () =
  let p = Problem.create ~sim:(Sim.Jaccard 0.8) [ "..." ] in
  check_bool "impossible" true ((Problem.info p 0).Problem.path = Problem.Impossible)

let test_problem_globals () =
  let p = Problem.create ~sim:(Sim.Edit_distance 1) ~q:2 paper_dict in
  (* entities have 8..10 grams; bounds are |e| -/+ 1. *)
  check_int "global lower" 7 (Problem.global_lower p);
  check_int "global upper" 11 (Problem.global_upper p)

let test_problem_invalid_args () =
  check_bool "bad q" true
    (try
       ignore (Problem.create ~sim:(Sim.Edit_distance 1) ~q:0 [ "x" ]);
       false
     with Invalid_argument _ -> true);
  check_bool "bad delta" true
    (try
       ignore (Problem.create ~sim:(Sim.Jaccard 0.) [ "x" ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Equivalence: Faerie (all pruning levels) == oracle                   *)
(* ------------------------------------------------------------------ *)

let faerie_char_matches ~pruning problem doc =
  let matches, _ = Single_heap.run ~pruning problem doc in
  let main =
    List.map
      (fun (m : Types.token_match) ->
        let c_start, c_len =
          Tk.Document.char_extent doc ~start:m.Types.m_start ~len:m.Types.m_len
        in
        {
          Types.c_entity = m.Types.m_entity;
          c_start;
          c_len;
          c_score = m.Types.m_score;
        })
      matches
  in
  let fb = Fallback.run problem doc in
  List.sort_uniq Types.compare_char_match (fb @ main)

let triples =
  List.map (fun (m : Types.char_match) -> (m.Types.c_entity, m.Types.c_start, m.Types.c_len))

let check_equiv ~sim ~q entities doc_text =
  let problem = Problem.create ~sim ~q entities in
  let doc = Problem.tokenize_document problem doc_text in
  let oracle = Naive.extract problem doc in
  List.iter
    (fun pruning ->
      let got = faerie_char_matches ~pruning problem doc in
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "%s @ %s" (Sim.to_string sim) (Types.pruning_name pruning))
        (triples oracle) (triples got))
    Types.all_prunings

let test_equiv_paper_ed () =
  check_equiv ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict paper_doc

let test_equiv_paper_ed_tau1 () =
  check_equiv ~sim:(Sim.Edit_distance 1) ~q:2 paper_dict paper_doc

let test_equiv_paper_eds () =
  check_equiv ~sim:(Sim.Edit_similarity 0.8) ~q:2 paper_dict paper_doc

let test_equiv_word_small () =
  let entities = [ "dong xin"; "surajit chaudhuri"; "sigmod conference" ] in
  let doc = "the dong xin paper at sigmod xin conference with chaudhuri" in
  List.iter
    (fun sim -> check_equiv ~sim ~q:1 entities doc)
    [ Sim.Jaccard 0.5; Sim.Cosine 0.5; Sim.Dice 0.5; Sim.Jaccard 1.0 ]

(* Random instances. *)

let word_vocab = [| "aa"; "bb"; "cc"; "dd"; "ee" |]

let gen_word_string n_lo n_hi =
  QCheck.Gen.(
    list_size (int_range n_lo n_hi) (oneofl (Array.to_list word_vocab))
    |> map (String.concat " "))

let arb_word_instance =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 5) (gen_word_string 1 4) >>= fun entities ->
      gen_word_string 4 20 >>= fun doc ->
      oneofl
        [ Sim.Jaccard 0.5; Sim.Jaccard 0.8; Sim.Jaccard 1.0; Sim.Cosine 0.6;
          Sim.Cosine 0.9; Sim.Dice 0.5; Sim.Dice 0.85 ]
      >>= fun sim -> return (entities, doc, sim))
  in
  QCheck.make
    ~print:(fun (es, doc, sim) ->
      Printf.sprintf "dict=[%s] doc=%S sim=%s" (String.concat "; " es) doc
        (Sim.to_string sim))
    gen

let equiv_prop (entities, doc_text, sim) ~q =
  let problem = Problem.create ~sim ~q entities in
  let doc = Problem.tokenize_document problem doc_text in
  let oracle = triples (Naive.extract problem doc) in
  List.for_all
    (fun pruning ->
      triples (faerie_char_matches ~pruning problem doc) = oracle)
    Types.all_prunings

let prop_equiv_word =
  QCheck.Test.make ~count:300 ~name:"all pruning levels == oracle (token sims)"
    arb_word_instance
    (fun inst -> equiv_prop inst ~q:1)

let gen_char_string lo hi =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range lo hi))

let arb_char_instance =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 4) (gen_char_string 2 8) >>= fun entities ->
      gen_char_string 8 30 >>= fun doc ->
      oneofl [ 2; 3 ] >>= fun q ->
      oneofl
        [ Sim.Edit_distance 0; Sim.Edit_distance 1; Sim.Edit_distance 2;
          Sim.Edit_similarity 0.7; Sim.Edit_similarity 0.9; Sim.Edit_similarity 1.0 ]
      >>= fun sim -> return (entities, doc, sim, q))
  in
  QCheck.make
    ~print:(fun (es, doc, sim, q) ->
      Printf.sprintf "dict=[%s] doc=%S sim=%s q=%d" (String.concat "; " es) doc
        (Sim.to_string sim) q)
    gen

let prop_equiv_char =
  QCheck.Test.make ~count:300 ~name:"all pruning levels == oracle (ed/eds)"
    arb_char_instance
    (fun (entities, doc, sim, q) -> equiv_prop (entities, doc, sim) ~q)

(* Token-based similarities over q-gram tokens (the paper's PubMed dice /
   cosine setting, Fig 17d/e) must also agree with the oracle. *)
let prop_equiv_gram_mode_token_sims =
  QCheck.Test.make ~count:200 ~name:"dice/cos over grams == oracle"
    arb_char_instance
    (fun (entities, doc_text, _, q) ->
      List.for_all
        (fun sim ->
          let problem =
            Problem.create ~sim ~mode:(Tk.Document.Gram q) entities
          in
          let doc = Problem.tokenize_document problem doc_text in
          let oracle = triples (Naive.extract problem doc) in
          triples (faerie_char_matches ~pruning:Types.Binary_window problem doc)
          = oracle)
        [ Sim.Dice 0.8; Sim.Cosine 0.8; Sim.Jaccard 0.7 ])

(* Multi-heap produces the same matches and the same candidate metric as the
   un-pruned single-heap. *)
let prop_multi_equals_single =
  QCheck.Test.make ~count:150 ~name:"multi-heap == single-heap"
    arb_char_instance
    (fun (entities, doc_text, sim, q) ->
      let problem = Problem.create ~sim ~q entities in
      let doc = Problem.tokenize_document problem doc_text in
      let m_matches, _ = Multi_heap.run problem doc in
      let s_matches, _ = Single_heap.run ~pruning:Types.No_prune problem doc in
      m_matches = s_matches)

let prop_multi_equals_single_word =
  QCheck.Test.make ~count:150 ~name:"multi-heap == single-heap (token sims)"
    arb_word_instance
    (fun (entities, doc_text, sim) ->
      let problem = Problem.create ~sim ~q:1 entities in
      let doc = Problem.tokenize_document problem doc_text in
      let m_matches, _ = Multi_heap.run problem doc in
      let s_matches, _ = Single_heap.run ~pruning:Types.No_prune problem doc in
      m_matches = s_matches)

(* Candidate counts shrink as pruning strengthens. *)
let prop_candidates_monotone =
  QCheck.Test.make ~count:200 ~name:"pruning reduces the candidate metric"
    arb_char_instance
    (fun (entities, doc_text, sim, q) ->
      let problem = Problem.create ~sim ~q entities in
      let doc = Problem.tokenize_document problem doc_text in
      let count pruning =
        let _, (stats : Types.stats) = Single_heap.candidates ~pruning problem doc in
        stats.Types.candidates
      in
      let none = count Types.No_prune in
      let lazy_ = count Types.Lazy_count in
      let binary = count Types.Binary_window in
      (* Bucket counting can examine one substring from two bucket slices
         (each with a partial count), so its entry metric is not pointwise
         below lazy's; the lazy and binary metrics are true subsets. *)
      none >= lazy_ && none >= binary)

(* ------------------------------------------------------------------ *)
(* Fallback                                                            *)
(* ------------------------------------------------------------------ *)

let test_fallback_short_entity () =
  (* Entity shorter than q can still be found. *)
  let problem = Problem.create ~sim:(Sim.Edit_distance 0) ~q:4 [ "ab" ] in
  let doc = Problem.tokenize_document problem "xxabyy" in
  let ms = Fallback.run problem doc in
  Alcotest.(check (list (triple int int int))) "found" [ (0, 2, 2) ] (triples ms)

let test_fallback_vacuous_threshold () =
  (* tau * q >= |e|: zero shared grams possible; fallback must find it. *)
  let problem = Problem.create ~sim:(Sim.Edit_distance 2) ~q:3 [ "abcd" ] in
  check_bool "on fallback path" true
    ((Problem.info problem 0).Problem.path = Problem.Fallback);
  let doc = Problem.tokenize_document problem "zzabcdzz" in
  let ms = Fallback.run problem doc in
  check_bool "exact occurrence found" true
    (List.exists
       (fun (m : Types.char_match) -> m.Types.c_start = 2 && m.Types.c_len = 4)
       ms)

let test_fallback_empty_for_indexed_only () =
  let problem = Problem.create ~sim:(Sim.Edit_distance 1) ~q:2 paper_dict in
  let doc = Problem.tokenize_document problem paper_doc in
  Alcotest.(check (list (triple int int int))) "nothing" [] (triples (Fallback.run problem doc))

let test_fallback_char_bounds () =
  Alcotest.(check (pair int int))
    "ed bounds" (3, 7)
    (Fallback.char_length_bounds (Sim.Edit_distance 2) ~e_chars:5);
  Alcotest.(check (pair int int))
    "eds bounds" (9, 11)
    (Fallback.char_length_bounds (Sim.Edit_similarity 0.85) ~e_chars:10)

(* ------------------------------------------------------------------ *)
(* Extractor end-to-end                                                *)
(* ------------------------------------------------------------------ *)

let test_extract_paper_results () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let results = Extractor.extract ex paper_doc in
  let has text entity =
    List.exists
      (fun (r : Extractor.result) ->
        String.equal r.Extractor.matched_text text
        && String.equal r.Extractor.entity entity)
      results
  in
  check_bool "venkaee sh ~ venkatesh" true (has "venkaee sh" "venkatesh");
  check_bool "surauijt ch ~ surajit ch" true (has "surauijt ch" "surajit ch");
  check_bool "chadhuri ~ chaudhuri" true (has "chadhuri" "chaudhuri")

let test_extract_pruning_levels_agree () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let reference = Extractor.extract ~pruning:Types.No_prune ex paper_doc in
  List.iter
    (fun pruning ->
      let got = Extractor.extract ~pruning ex paper_doc in
      check_bool (Types.pruning_name pruning) true (got = reference))
    Types.all_prunings

let test_extract_empty_document () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 1) ~q:2 paper_dict in
  check_int "no results" 0 (List.length (Extractor.extract ex ""))

let test_extract_empty_dictionary () =
  let ex = Extractor.create ~sim:(Sim.Jaccard 0.8) [] in
  check_int "no results" 0 (List.length (Extractor.extract ex "some document"))

let test_extract_doc_shorter_than_q () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 1) ~q:4 [ "abcdef" ] in
  check_int "tiny doc, no crash" 0 (List.length (Extractor.extract ex "ab"))

let test_extract_exact_token_match_delta_one () =
  let ex = Extractor.create ~sim:(Sim.Jaccard 1.0) [ "dong xin" ] in
  let results = Extractor.extract ex "with dong xin here" in
  check_int "one match" 1 (List.length results);
  let r = List.hd results in
  Alcotest.(check string) "span text" "dong xin" r.Extractor.matched_text

let test_extract_token_swap_found () =
  (* Token multisets ignore order: "xin dong" matches at jaccard 1. *)
  let ex = Extractor.create ~sim:(Sim.Jaccard 1.0) [ "dong xin" ] in
  let results = Extractor.extract ex "by xin dong today" in
  check_bool "swapped tokens match" true
    (List.exists (fun r -> r.Extractor.matched_text = "xin dong") results)

let test_extract_results_sorted () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let results = Extractor.extract ex paper_doc in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        (a.Extractor.start_char, a.Extractor.len_chars, a.Extractor.entity_id)
        <= (b.Extractor.start_char, b.Extractor.len_chars, b.Extractor.entity_id)
        && sorted rest
    | _ -> true
  in
  check_bool "sorted" true (sorted results)

let test_extract_stats_populated () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let doc = Extractor.tokenize ex paper_doc in
  let report = Extractor.run ex (`Doc doc) in
  let stats = report.Extractor.stats in
  check_bool "entities seen" true (stats.Types.entities_seen > 0);
  check_bool "verified counted" true (stats.Types.verified > 0);
  check_bool "outcome ok" true (Outcome.is_ok report.Extractor.outcome);
  check_bool "elapsed non-negative" true (report.Extractor.elapsed_ns >= 0L)

let test_extract_duplicate_entities_both_reported () =
  (* Duplicate dictionary strings keep distinct ids; both must match. *)
  let ex = Extractor.create ~sim:(Sim.Edit_distance 0) ~q:2 [ "abc"; "abc" ] in
  let results = Extractor.extract ex "xxabcxx" in
  Alcotest.(check (list int))
    "both ids" [ 0; 1 ]
    (List.sort compare (List.map (fun r -> r.Extractor.entity_id) results))

let test_extract_entity_equals_document () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 0) ~q:2 [ "chaudhuri" ] in
  let results = Extractor.extract ex "chaudhuri" in
  check_int "whole document matches" 1 (List.length results);
  let r = List.hd results in
  check_int "full span" 9 r.Extractor.len_chars

let test_extract_overlapping_mentions () =
  (* Two entities overlapping in the text: both found. *)
  let ex = Extractor.create ~sim:(Sim.Edit_distance 0) ~q:2 [ "abcd"; "cdef" ] in
  let results = Extractor.extract ex "zabcdefz" in
  check_bool "abcd found" true
    (List.exists (fun r -> r.Extractor.matched_text = "abcd") results);
  check_bool "cdef found" true
    (List.exists (fun r -> r.Extractor.matched_text = "cdef") results)

let test_extract_punctuation_only_document () =
  let ex = Extractor.create ~sim:(Sim.Jaccard 0.5) [ "dong xin" ] in
  check_int "no tokens, no matches" 0
    (List.length (Extractor.extract ex "... !!! ,,,"))

let test_extract_repeated_mention () =
  let ex = Extractor.create ~sim:(Sim.Jaccard 1.0) [ "dong xin" ] in
  let results = Extractor.extract ex "dong xin and dong xin and dong xin" in
  check_int "three occurrences" 3
    (List.length
       (List.filter (fun r -> r.Extractor.matched_text = "dong xin") results))

let test_extract_tau_zero_is_exact_substring () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 0) ~q:3 [ "chaudhuri" ] in
  let results = Extractor.extract ex "with chaudhuri inside" in
  check_int "exactly one" 1 (List.length results);
  Alcotest.(check string) "text" "chaudhuri" (List.hd results).Extractor.matched_text

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faerie_core"
    [
      ( "counting",
        [
          Alcotest.test_case "basic" `Quick test_counting_basic;
          Alcotest.test_case "len exceeds doc" `Quick test_counting_len_exceeds_doc;
          Alcotest.test_case "slice" `Quick test_counting_slice;
          q prop_counting_matches_brute;
        ] );
      ( "position_list",
        [
          Alcotest.test_case "paper buckets" `Quick test_buckets_paper;
          Alcotest.test_case "single bucket" `Quick test_buckets_single;
          Alcotest.test_case "empty" `Quick test_buckets_empty;
          Alcotest.test_case "negative gap" `Quick test_buckets_negative_gap;
          Alcotest.test_case "count_in_range" `Quick test_count_in_range;
          q prop_buckets_partition;
        ] );
      ( "windows",
        [
          Alcotest.test_case "paper example" `Quick test_windows_paper_example;
          Alcotest.test_case "tl > upper" `Quick test_windows_tl_greater_than_upper;
          Alcotest.test_case "all feasible" `Quick test_windows_all_feasible;
          Alcotest.test_case "binary span paper" `Quick test_binary_span_paper;
          Alcotest.test_case "binary shift skips" `Quick test_binary_shift_skips;
          q prop_windows_match_reference;
        ] );
      ( "problem",
        [
          Alcotest.test_case "paths" `Quick test_problem_paths;
          Alcotest.test_case "word empty entity" `Quick test_problem_word_empty_entity;
          Alcotest.test_case "globals" `Quick test_problem_globals;
          Alcotest.test_case "invalid args" `Quick test_problem_invalid_args;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "paper ed tau=2" `Quick test_equiv_paper_ed;
          Alcotest.test_case "paper ed tau=1" `Quick test_equiv_paper_ed_tau1;
          Alcotest.test_case "paper eds" `Quick test_equiv_paper_eds;
          Alcotest.test_case "word sims small" `Quick test_equiv_word_small;
          q prop_equiv_word;
          q prop_equiv_char;
          q prop_equiv_gram_mode_token_sims;
          q prop_multi_equals_single;
          q prop_multi_equals_single_word;
          q prop_candidates_monotone;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "short entity" `Quick test_fallback_short_entity;
          Alcotest.test_case "vacuous threshold" `Quick test_fallback_vacuous_threshold;
          Alcotest.test_case "empty for indexed" `Quick test_fallback_empty_for_indexed_only;
          Alcotest.test_case "char bounds" `Quick test_fallback_char_bounds;
        ] );
      ( "extractor",
        [
          Alcotest.test_case "paper results" `Quick test_extract_paper_results;
          Alcotest.test_case "pruning levels agree" `Quick test_extract_pruning_levels_agree;
          Alcotest.test_case "empty document" `Quick test_extract_empty_document;
          Alcotest.test_case "empty dictionary" `Quick test_extract_empty_dictionary;
          Alcotest.test_case "doc shorter than q" `Quick test_extract_doc_shorter_than_q;
          Alcotest.test_case "exact token match" `Quick test_extract_exact_token_match_delta_one;
          Alcotest.test_case "token swap" `Quick test_extract_token_swap_found;
          Alcotest.test_case "results sorted" `Quick test_extract_results_sorted;
          Alcotest.test_case "stats populated" `Quick test_extract_stats_populated;
          Alcotest.test_case "duplicate entities" `Quick test_extract_duplicate_entities_both_reported;
          Alcotest.test_case "entity equals document" `Quick test_extract_entity_equals_document;
          Alcotest.test_case "overlapping mentions" `Quick test_extract_overlapping_mentions;
          Alcotest.test_case "punctuation-only doc" `Quick test_extract_punctuation_only_document;
          Alcotest.test_case "repeated mention" `Quick test_extract_repeated_mention;
          Alcotest.test_case "tau zero exact" `Quick test_extract_tau_zero_is_exact_substring;
        ] );
    ]
