(* Dynamic-dictionary tests: the WAL record codec under byte-level
   truncation and corruption, the Delta overlay's extraction equivalence
   against a from-scratch rebuild at every pruning level, crash-safety at
   the wal_append / wal_replay / compact_save / compact_commit fault
   sites, and the cluster's journaled mutation path — 1-shard vs 4-shard
   equivalence, compaction aborts, and journal replay across shard kills.

   The cluster tests fork shard processes. Unix.fork refuses in any
   process that has ever created a domain, so nothing in this binary may
   spawn a domain — extraction baselines use the plain single-threaded
   Single_heap / Fallback path. *)

module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Outcome = Core.Outcome
module Supervisor = Core.Supervisor
module Cluster = Core.Cluster
module Tk = Faerie_tokenize
module Ix = Faerie_index
module Wal = Faerie_util.Wal
module Fault = Faerie_util.Fault
module Budget = Faerie_util.Budget
module Xorshift = Faerie_util.Xorshift

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Extract [text] and project every match to (start, len, raw entity).
   Entity ids are NOT comparable across index builds — an overlay view
   numbers adds past the base space while a rebuild is dense — so all
   equivalence checks compare spans by the raw string behind the id. *)
let spans ?pruning problem text =
  let doc = Problem.tokenize_document problem text in
  let matches, _ = Core.Single_heap.run ?pruning problem doc in
  let main =
    List.map
      (fun (m : Types.token_match) ->
        let c_start, c_len =
          Tk.Document.char_extent doc ~start:m.Types.m_start ~len:m.Types.m_len
        in
        {
          Types.c_entity = m.Types.m_entity;
          c_start;
          c_len;
          c_score = m.Types.m_score;
        })
      matches
  in
  let all =
    List.sort_uniq Types.compare_char_match
      (Core.Fallback.run problem doc @ main)
  in
  let dict = Problem.dictionary problem in
  List.sort compare
    (List.map
       (fun (m : Types.char_match) ->
         ( m.Types.c_start,
           m.Types.c_len,
           (Ix.Dictionary.entity dict m.Types.c_entity).Ix.Entity.raw ))
       all)

(* ------------------------------------------------------------------ *)
(* WAL: record codec, torn tails, corruption                           *)
(* ------------------------------------------------------------------ *)

let wal_ops =
  [
    Wal.Add "alpha";
    Wal.Remove "beta";
    Wal.Add "a b  c";
    Wal.Add (String.make 40 'z');
    Wal.Remove "";
    Wal.Add "q";
  ]

let test_wal_append_replay () =
  let path = Filename.temp_file "faerie-wal-" ".wal" in
  let w = Wal.openfile path in
  List.iter (Wal.append w) wal_ops;
  Wal.close w;
  let applied = ref [] in
  let n, tail = Wal.replay path (fun op -> applied := op :: !applied) in
  check_int "all records replayed" (List.length wal_ops) n;
  check_bool "clean tail" true (tail = Wal.Clean);
  check_bool "records in append order" true (List.rev !applied = wal_ops);
  let w = Wal.openfile path in
  Wal.truncate w;
  Wal.close w;
  check_bool "truncate empties the log" true
    (Wal.replay path (fun _ -> ()) = (0, Wal.Clean));
  Sys.remove path;
  check_bool "missing file reads as empty" true
    (Wal.replay path (fun _ -> ()) = (0, Wal.Clean))

(* Crash-safety of the append path at the byte level: for EVERY prefix of
   a multi-record log image, parse/replay must recover exactly the
   whole-record prefix — never Corrupt, never a partial record — and
   classify the tail as Clean exactly at record boundaries. repair must
   then trim back to a boundary so appends can resume. *)
let test_wal_truncation_matrix () =
  let encs = List.map Wal.encode wal_ops in
  let img = String.concat "" encs in
  let bounds =
    (* record end offsets: [e1; e1+e2; ...; len] *)
    match
      List.rev
        (List.fold_left
           (fun acc e -> (List.hd acc + String.length e) :: acc)
           [ 0 ] encs)
    with
    | 0 :: ends -> ends
    | _ -> assert false
  in
  let path = Filename.temp_file "faerie-wal-matrix-" ".wal" in
  for k = 0 to String.length img do
    let pre = String.sub img 0 k in
    let whole = List.filter (fun b -> b <= k) bounds in
    let n_whole = List.length whole in
    let last_end = List.fold_left max 0 whole in
    let expected_ops = List.filteri (fun i _ -> i < n_whole) wal_ops in
    let expected_tail =
      if k = last_end then Wal.Clean else Wal.Torn { at = last_end; len = k }
    in
    (match Wal.parse pre with
    | ops, tail ->
        if ops <> expected_ops then
          Alcotest.failf "prefix %d: wrong whole-record prefix" k;
        if tail <> expected_tail then
          Alcotest.failf "prefix %d: wrong tail classification" k
    | exception Wal.Corrupt msg ->
        Alcotest.failf "prefix %d misread as Corrupt: %s" k msg);
    write_file path pre;
    let applied = ref [] in
    let n, rtail = Wal.replay path (fun op -> applied := op :: !applied) in
    check_int (Printf.sprintf "prefix %d: replay count" k) n_whole n;
    check_bool
      (Printf.sprintf "prefix %d: replay applies the prefix" k)
      true
      (List.rev !applied = expected_ops && rtail = expected_tail);
    (match Wal.replay ~strict:true path (fun _ -> ()) with
    | _ ->
        check_bool
          (Printf.sprintf "prefix %d: strict accepts only clean" k)
          true
          (expected_tail = Wal.Clean)
    | exception Wal.Truncated { at; len } ->
        check_bool
          (Printf.sprintf "prefix %d: strict reports the torn tail" k)
          true
          (expected_tail = Wal.Torn { at; len }));
    Wal.repair path rtail;
    let n2, t2 = Wal.replay path (fun _ -> ()) in
    check_int (Printf.sprintf "prefix %d: repair keeps the prefix" k) n_whole
      n2;
    check_bool (Printf.sprintf "prefix %d: repair yields clean" k) true
      (t2 = Wal.Clean)
  done;
  Sys.remove path

(* Structural damage that cannot come from a torn append — a bit flip
   inside a complete record — must refuse loudly, and a Corrupt log must
   apply nothing (parse-before-apply). *)
let test_wal_corruption () =
  let enc = Wal.encode (Wal.Add "hello") in
  let flip i =
    let b = Bytes.of_string enc in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    Bytes.to_string b
  in
  (* byte 1 is the opcode, byte 3 sits inside the raw string *)
  List.iter
    (fun i ->
      match Wal.parse (flip i) with
      | _ -> Alcotest.failf "bit flip at byte %d not rejected" i
      | exception Wal.Corrupt _ -> ())
    [ 1; 3 ];
  let path = Filename.temp_file "faerie-wal-corrupt-" ".wal" in
  write_file path (flip 3 ^ Wal.encode (Wal.Add "later"));
  let applied = ref 0 in
  (match Wal.replay path (fun _ -> incr applied) with
  | _ -> Alcotest.fail "corrupt log must refuse to replay"
  | exception Wal.Corrupt _ -> check_int "nothing applied" 0 !applied);
  Sys.remove path

let qcheck_wal_roundtrip =
  QCheck.Test.make ~count:400
    ~name:"wal image roundtrips hostile entity strings"
    QCheck.(small_list (pair bool string))
    (fun specs ->
      let ops =
        List.map (fun (add, s) -> if add then Wal.Add s else Wal.Remove s) specs
      in
      let img = String.concat "" (List.map Wal.encode ops) in
      Wal.parse img = (ops, Wal.Clean))

(* ------------------------------------------------------------------ *)
(* WAL fault sites                                                     *)
(* ------------------------------------------------------------------ *)

(* wal_append fires BEFORE the write: an injection must leave zero bytes
   on disk (the mutation was rejected, not half-applied), and a retry
   after disarming lands normally. *)
let test_wal_append_fault () =
  let path = Filename.temp_file "faerie-wal-fault-" ".wal" in
  let w = Wal.openfile path in
  Fault.configure { Fault.seed = 1; rates = [ ("wal_append", 1.0) ] };
  Fun.protect ~finally:Fault.disarm (fun () ->
      (match Wal.append w (Wal.Add "x") with
      | () -> Alcotest.fail "append must raise under injection"
      | exception Fault.Injected "wal_append" -> ());
      check_int "nothing reached disk" 0 (Unix.stat path).Unix.st_size);
  Wal.append w (Wal.Add "x");
  Wal.close w;
  check_bool "retry after disarm lands" true
    (Wal.replay path (fun _ -> ()) = (1, Wal.Clean));
  Sys.remove path

(* A crash mid-recovery (wal_replay firing partway through) must leave a
   state from which a rerun of the full replay converges — idempotency of
   add/remove under replay is what makes the WAL safe to re-run. *)
let test_wal_replay_crash_convergence () =
  let entities = [ "alpha"; "beta" ] in
  let problem = Problem.create ~sim:(Sim.Edit_distance 1) ~q:2 entities in
  let path = Filename.temp_file "faerie-wal-recover-" ".wal" in
  let w = Wal.openfile path in
  let ops =
    [ Wal.Add "gamma"; Wal.Remove "alpha"; Wal.Add "delta"; Wal.Add "beta" ]
  in
  List.iter (Wal.append w) ops;
  Wal.close w;
  let expected = [ "beta"; "gamma"; "delta" ] in
  let apply d = function
    | Wal.Add r -> ignore (Ix.Delta.add d r)
    | Wal.Remove r -> ignore (Ix.Delta.remove d r)
  in
  (* Find a seed where the injection fires after at least one record has
     already been applied — the interesting mid-recovery crash. *)
  let attempt seed =
    let d = Ix.Delta.create (Problem.index problem) in
    let applied = ref 0 in
    Fault.configure { Fault.seed = seed; rates = [ ("wal_replay", 0.5) ] };
    let raised =
      match
        Wal.replay path (fun op ->
            incr applied;
            apply d op)
      with
      | _ -> false
      | exception Fault.Injected "wal_replay" -> true
    in
    Fault.disarm ();
    if raised && !applied > 0 && !applied < List.length ops then Some d
    else None
  in
  let rec find seed =
    if seed > 500 then Alcotest.fail "no seed produced a mid-replay crash"
    else match attempt seed with Some d -> d | None -> find (seed + 1)
  in
  let d = find 1 in
  (* Rerun the whole log against the partially recovered state. *)
  let n, tail = Wal.replay path (apply d) in
  check_int "rerun covers the whole log" (List.length ops) n;
  check_bool "clean tail" true (tail = Wal.Clean);
  check_bool "converges to the full mutation set" true
    (List.sort compare (Ix.Delta.live_raws d) = List.sort compare expected);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Delta overlay: extraction equivalence                               *)
(* ------------------------------------------------------------------ *)

let random_string rng lo hi =
  let n = Xorshift.int_in_range rng ~lo ~hi in
  String.init n (fun _ -> Xorshift.choose rng [| 'a'; 'b'; 'c' |])

let random_words rng lo hi =
  let n = Xorshift.int_in_range rng ~lo ~hi in
  List.init n (fun _ -> Xorshift.choose rng [| "aa"; "bb"; "cc"; "dd"; "ee" |])
  |> String.concat " "

(* The reference model of the live dictionary: a duplicate-free raw list
   the Delta must agree with after every mutation. *)
let apply_model model = function
  | `Add r -> if List.mem r model then model else model @ [ r ]
  | `Remove r -> List.filter (fun x -> x <> r) model

(* Apply to the Delta and cross-check the result constructor against the
   model: Added iff absent, Exists iff live, Removed iff live. *)
let apply_delta_checked d model op =
  match op with
  | `Add r -> (
      match Ix.Delta.add d r with
      | Ix.Delta.Added _ ->
          check_bool "Added only for absent raws" true (not (List.mem r model))
      | Ix.Delta.Exists _ ->
          check_bool "Exists only for live raws" true (List.mem r model))
  | `Remove r -> (
      match Ix.Delta.remove d r with
      | Ix.Delta.Removed _ ->
          check_bool "Removed only for live raws" true (List.mem r model)
      | Ix.Delta.Absent ->
          check_bool "Absent only for dead raws" true (not (List.mem r model)))

let random_op rng model fresh =
  match Xorshift.int rng 10 with
  | 0 | 1 | 2 | 3 | 4 -> `Add (fresh ())
  | 5 when model <> [] -> `Add (Xorshift.choose rng (Array.of_list model))
  | (6 | 7 | 8) when List.length model > 1 ->
      `Remove (Xorshift.choose rng (Array.of_list model))
  | _ -> `Remove (fresh ())

(* Random mutation sequences: the overlay view must extract byte-identical
   spans to a from-scratch rebuild over the model's live set, at every
   pruning level, and compacting the overlay must preserve the answers. *)
let test_delta_equivalence_random () =
  let rng = Xorshift.create 0xFAE71E in
  let shapes =
    [
      (Sim.Edit_distance 1, 2);
      (Sim.Edit_distance 2, 3);
      (Sim.Edit_similarity 0.8, 2);
      (Sim.Jaccard 0.8, 1);
      (Sim.Dice 0.7, 1);
    ]
  in
  List.iter
    (fun (sim, q) ->
      let char_based = Sim.char_based sim in
      let fresh () =
        if char_based then random_string rng 1 8 else random_words rng 1 3
      in
      for _round = 1 to 3 do
        let base = List.sort_uniq compare (List.init 4 (fun _ -> fresh ())) in
        let problem0 = Problem.create ~sim ~q base in
        let d = Ix.Delta.create (Problem.index problem0) in
        let model = ref base in
        for _op = 1 to 10 do
          let op = random_op rng !model fresh in
          apply_delta_checked d !model op;
          model := apply_model !model op
        done;
        check_bool "live_raws agrees with the model" true
          (List.sort compare (Ix.Delta.live_raws d)
          = List.sort compare !model);
        let overlay = Problem.of_index ~sim (Ix.Delta.view d) in
        let rebuilt = Problem.create ~sim ~q !model in
        let docs =
          List.init 3 (fun _ ->
              if char_based then random_string rng 5 30
              else random_words rng 3 12)
        in
        List.iter
          (fun text ->
            List.iter
              (fun pruning ->
                if spans ~pruning overlay text <> spans ~pruning rebuilt text
                then
                  Alcotest.failf
                    "overlay diverges from rebuild (sim=%s pruning=%s doc=%S)"
                    (Sim.to_string sim)
                    (Types.pruning_name pruning)
                    text)
              Types.all_prunings)
          docs;
        let compacted = Problem.of_index ~sim (Ix.Delta.compact d) in
        List.iter
          (fun text ->
            if spans compacted text <> spans rebuilt text then
              Alcotest.failf "compacted index diverges (sim=%s doc=%S)"
                (Sim.to_string sim) text)
          docs
      done)
    shapes

(* Mutation-result algebra: ids are never reused, re-adding a removed raw
   allocates fresh, base entities tombstone in place. *)
let test_delta_id_discipline () =
  let problem =
    Problem.create ~sim:(Sim.Edit_distance 1) ~q:2 [ "alpha"; "beta" ]
  in
  let d = Ix.Delta.create (Problem.index problem) in
  let id1 =
    match Ix.Delta.add d "gamma" with
    | Ix.Delta.Added i -> i
    | Ix.Delta.Exists _ -> Alcotest.fail "fresh raw reported Exists"
  in
  check_bool "added ids start past the base space" true (id1 >= 2);
  (match Ix.Delta.add d "gamma" with
  | Ix.Delta.Exists i -> check_int "Exists returns the live id" id1 i
  | Ix.Delta.Added _ -> Alcotest.fail "re-add of live raw must be Exists");
  (match Ix.Delta.remove d "gamma" with
  | Ix.Delta.Removed i -> check_int "Removed returns the id" id1 i
  | Ix.Delta.Absent -> Alcotest.fail "live raw reported Absent");
  check_bool "double remove is Absent" true
    (Ix.Delta.remove d "gamma" = Ix.Delta.Absent);
  (match Ix.Delta.add d "gamma" with
  | Ix.Delta.Added i2 -> check_bool "ids are never reused" true (i2 <> id1)
  | Ix.Delta.Exists _ -> Alcotest.fail "re-add after remove must be Added");
  (match Ix.Delta.remove d "alpha" with
  | Ix.Delta.Removed 0 -> ()
  | _ -> Alcotest.fail "base entity must tombstone under its base id");
  check_bool "tombstoned raw not live" true (Ix.Delta.mem d "alpha" = None);
  check_int "live count reflects the churn" 2 (Ix.Delta.live_count d);
  check_bool "overlay is pending" true (Ix.Delta.pending d > 0)

(* ------------------------------------------------------------------ *)
(* Cluster: journaled mutations                                        *)
(* ------------------------------------------------------------------ *)

let quiet_stderr f =
  (* Shard restarts log to stderr by design; keep test output readable. *)
  let saved = Unix.dup Unix.stderr in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stderr;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      Unix.dup2 saved Unix.stderr;
      Unix.close saved)
    f

let cluster_config ?(pool_retries = 1) ~shards ~retries () =
  {
    Cluster.default_config with
    Cluster.shards;
    pool =
      {
        Supervisor.domains = 1;
        retry =
          {
            Supervisor.default_retry with
            retries = pool_retries;
            backoff_ms = 0;
          };
        queue_capacity = 8;
        quarantine = None;
        shed = false;
        shard = None;
      };
    retry = { Supervisor.default_retry with retries; backoff_ms = 0 };
  }

let paper_dict =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let paper_doc =
  "an efficient filter for approximate membership checking. venkaee shga \
   kamunshik kabarati, dong xin, surauijt chadhurisigmod."

let docs = [| paper_doc; "chaudhuri venkatesh dong xin"; ""; "zzz qqq" |]

(* 6 applied mutations + 1 no-op; the no-op must not journal. *)
let mutation_script =
  [
    `Add "dong xin";
    `Add "venkaee sh";
    `Remove "venkatesh";
    `Add "kamunshik";
    `Remove "chakrabarti";
    `Add "chadhuri";
    `Remove "not in the dictionary";
  ]

let expected_live = List.fold_left apply_model paper_dict mutation_script
let applied_mutations = 6

let apply_cluster_script cluster =
  List.iter
    (function
      | `Add r -> (
          match Cluster.dict_add cluster r with
          | `Added _ -> ()
          | `Exists _ -> Alcotest.failf "add %S reported Exists" r)
      | `Remove r -> (
          let expected = List.exists (fun x -> x = r) paper_dict in
          match Cluster.dict_remove cluster r with
          | `Removed _ when expected -> ()
          | `Absent when not expected -> ()
          | _ -> Alcotest.failf "remove %S misclassified" r))
    mutation_script

let cluster_spans cluster ~doc text =
  match Cluster.submit cluster ~doc text with
  | Outcome.Ok ms ->
      List.sort compare
        (List.map
           (fun (m : Types.char_match) ->
             match Cluster.entity_raw cluster m.Types.c_entity with
             | Some raw -> (m.Types.c_start, m.Types.c_len, raw)
             | None ->
                 Alcotest.failf "match entity %d has no live raw"
                   m.Types.c_entity)
           ms)
  | _ -> Alcotest.fail "expected Ok from cluster submit"

let rebuilt_spans () =
  let problem =
    Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 expected_live
  in
  Array.map (spans problem) docs

(* The tentpole property for mutations: after the same dict_add /
   dict_remove script, merged answers must be byte-identical between a
   1-shard and a 4-shard cluster, and identical to a single-process run
   over a dictionary that always had the final live set. *)
let test_cluster_mutation_equivalence () =
  let run shards =
    let cluster =
      Cluster.create
        ~config:(cluster_config ~shards ~retries:1 ())
        ~sim:(Sim.Edit_distance 2) ~q:2
        (fun () -> paper_dict)
    in
    Fun.protect
      ~finally:(fun () -> Cluster.shutdown cluster)
      (fun () ->
        apply_cluster_script cluster;
        check_int "journal holds the applied mutations" applied_mutations
          (Cluster.delta_entities cluster);
        check_int "live count" (List.length expected_live)
          (Cluster.live_count cluster);
        check_bool "removed raw resolves to nothing" true
          (Cluster.entity_raw cluster 3 = None);
        Array.mapi (fun i text -> cluster_spans cluster ~doc:i text) docs)
  in
  let one = run 1 and four = run 4 in
  check_bool "1-shard == 4-shard mutated merge" true (one = four);
  let want = rebuilt_spans () in
  Array.iteri
    (fun i got ->
      check_bool
        (Printf.sprintf "doc %d: mutated cluster == rebuilt dictionary" i)
        true (got = want.(i)))
    one

(* Compaction folds the journal into a fresh generation without changing
   any answer, and mutation keeps working on the new generation. *)
let test_cluster_compact () =
  let cluster =
    Cluster.create
      ~config:(cluster_config ~shards:2 ~retries:1 ())
      ~sim:(Sim.Edit_distance 2) ~q:2
      (fun () -> paper_dict)
  in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      apply_cluster_script cluster;
      let before =
        Array.mapi (fun i text -> cluster_spans cluster ~doc:i text) docs
      in
      (match Cluster.compact cluster with
      | Ok (g, folded) ->
          check_int "compact commits generation 1" 1 g;
          check_int "folds every pending mutation" applied_mutations folded
      | Error e -> Alcotest.fail e);
      check_int "generation visible" 1 (Cluster.generation cluster);
      check_int "journal drained" 0 (Cluster.delta_entities cluster);
      check_int "live count preserved" (List.length expected_live)
        (Cluster.live_count cluster);
      let after =
        Array.mapi
          (fun i text -> cluster_spans cluster ~doc:(100 + i) text)
          docs
      in
      check_bool "answers unchanged across compaction" true (before = after);
      (match Cluster.dict_add cluster "post compact" with
      | `Added _ -> ()
      | `Exists _ -> Alcotest.fail "fresh add after compact must be Added");
      check_int "new journal entry" 1 (Cluster.delta_entities cluster);
      match Cluster.compact cluster with
      | Ok (g, folded) ->
          check_int "second compact commits generation 2" 2 g;
          check_int "folds the new mutation" 1 folded
      | Error e -> Alcotest.fail e)

(* Crash-safety at the compactor's two fault sites: an injection at
   compact_save (while building the snapshot) or compact_commit (after
   every shard prepared, before adoption) must return Error, keep the old
   generation serving with every journaled mutation intact, and a retry
   after disarming must succeed with unchanged answers. *)
let test_cluster_compact_fault_sites () =
  quiet_stderr (fun () ->
      let cluster =
        Cluster.create
          ~config:(cluster_config ~shards:2 ~retries:1 ())
          ~sim:(Sim.Edit_distance 2) ~q:2
          (fun () -> paper_dict)
      in
      Fun.protect
        ~finally:(fun () ->
          Fault.disarm ();
          Cluster.shutdown cluster)
        (fun () ->
          apply_cluster_script cluster;
          let before =
            Array.mapi (fun i text -> cluster_spans cluster ~doc:i text) docs
          in
          List.iteri
            (fun round site ->
              Fault.configure { Fault.seed = 3; rates = [ (site, 1.0) ] };
              (match Cluster.compact cluster with
              | Ok _ -> Alcotest.failf "compact must fail under %s" site
              | Error _ -> ());
              Fault.disarm ();
              check_int
                (Printf.sprintf "%s: old generation keeps serving" site)
                0 (Cluster.generation cluster);
              check_int
                (Printf.sprintf "%s: journal keeps its mutations" site)
                applied_mutations
                (Cluster.delta_entities cluster);
              let now =
                Array.mapi
                  (fun i text ->
                    cluster_spans cluster ~doc:(((round + 1) * 100) + i) text)
                  docs
              in
              check_bool
                (Printf.sprintf "%s: answers unchanged after abort" site)
                true (before = now))
            [ "compact_save"; "compact_commit" ];
          (match Cluster.compact cluster with
          | Ok (g, folded) ->
              check_int "retry after disarm commits" 1 g;
              check_int "retry folds everything" applied_mutations folded
          | Error e -> Alcotest.fail e);
          let after =
            Array.mapi
              (fun i text -> cluster_spans cluster ~doc:(500 + i) text)
              docs
          in
          check_bool "answers unchanged across the recovered compaction" true
            (before = after)))

(* A mutation, once accepted, survives shard deaths: with shard_frame and
   supervisor_worker faults armed, respawned shards are replayed their
   journals, so every document must still converge to the mutated
   dictionary's exact answers. *)
let test_cluster_mutation_survives_shard_kills () =
  quiet_stderr (fun () ->
      let want = rebuilt_spans () in
      (* Arm BEFORE the fork so shard children inherit the campaign: the
         shard_frame site fires inside the children on Doc frames. Dict
         frames never fault, so the mutations land cleanly; the kills
         happen under the extraction load that follows. *)
      Fault.configure
        {
          Fault.seed = 20260809;
          rates = [ ("shard_frame", 0.3); ("supervisor_worker", 0.2) ];
        };
      let cluster =
        Cluster.create
          ~config:(cluster_config ~pool_retries:6 ~shards:4 ~retries:8 ())
          ~sim:(Sim.Edit_distance 2) ~q:2
          (fun () -> paper_dict)
      in
      Fun.protect
        ~finally:(fun () ->
          Fault.disarm ();
          Cluster.shutdown cluster)
        (fun () ->
          apply_cluster_script cluster;
          Array.iteri
            (fun i text ->
              check_bool
                (Printf.sprintf
                   "doc %d: mutated answers survive shard kills" i)
                true
                (cluster_spans cluster ~doc:i text = want.(i)))
            docs;
          Fault.disarm ();
          check_bool "shard kills actually happened" true
            ((Cluster.totals cluster).Cluster.shard_restarts > 0);
          check_int "journal intact after replays" applied_mutations
            (Cluster.delta_entities cluster)))

(* Health must surface the mutation state: per-shard journal length and a
   compaction age that resets when a generation commits. *)
let test_cluster_health_mutation_fields () =
  let cluster =
    Cluster.create
      ~config:(cluster_config ~shards:2 ~retries:1 ())
      ~sim:(Sim.Edit_distance 2) ~q:2
      (fun () -> paper_dict)
  in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown cluster)
    (fun () ->
      apply_cluster_script cluster;
      let status, healths = Cluster.health cluster in
      Alcotest.(check string) "cluster healthy" "ok" status;
      let journal_total =
        List.fold_left
          (fun acc h -> acc + h.Core.Serve_proto.h_delta)
          0 healths
      in
      check_int "per-shard journal lengths sum to the pending mutations"
        applied_mutations journal_total;
      List.iter
        (fun h ->
          match h.Core.Serve_proto.h_compact_age_s with
          | Some age -> check_bool "compaction age is sane" true (age >= 0.)
          | None -> Alcotest.fail "compaction age missing")
        healths;
      (match Cluster.compact cluster with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let _, healths = Cluster.health cluster in
      List.iter
        (fun h ->
          check_int "journal drained after compaction" 0
            h.Core.Serve_proto.h_delta)
        healths)

(* ------------------------------------------------------------------ *)
(* Quarantine generation stamp                                         *)
(* ------------------------------------------------------------------ *)

let test_quarantine_gen_codec () =
  let r =
    {
      Supervisor.Quarantine.doc_id = 9;
      id = None;
      shard = Some 1;
      attempts = 2;
      error = "worker crashed";
      sim = Sim.Edit_distance 2;
      q = 2;
      pruning = Types.Binary_window;
      budget = Budget.spec_unlimited;
      fault = None;
      gen = 5;
      text = "poison";
    }
  in
  (match Supervisor.Quarantine.(of_json (to_json r)) with
  | Ok back ->
      check_int "generation round-trips" 5 back.Supervisor.Quarantine.gen
  | Error e -> Alcotest.fail e);
  (* Records written before dynamic dictionaries carry no gen key; they
     must parse as generation 0. *)
  let legacy =
    Str.replace_first (Str.regexp_string {|,"gen":5|}) ""
      (Supervisor.Quarantine.to_json r)
  in
  check_bool "legacy line really has no gen key" true
    (not
       (try
          ignore (Str.search_forward (Str.regexp_string {|"gen"|}) legacy 0);
          true
        with Not_found -> false));
  match Supervisor.Quarantine.of_json legacy with
  | Ok back ->
      check_int "legacy records default to generation 0" 0
        back.Supervisor.Quarantine.gen
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "faerie_mutation"
    [
      ( "wal",
        [
          Alcotest.test_case "append + replay roundtrip" `Quick
            test_wal_append_replay;
          Alcotest.test_case "byte-truncation matrix" `Quick
            test_wal_truncation_matrix;
          Alcotest.test_case "corruption refused" `Quick test_wal_corruption;
          QCheck_alcotest.to_alcotest qcheck_wal_roundtrip;
        ] );
      ( "wal_faults",
        [
          Alcotest.test_case "wal_append injection rejects the mutation"
            `Quick test_wal_append_fault;
          Alcotest.test_case "mid-replay crash converges on rerun" `Quick
            test_wal_replay_crash_convergence;
        ] );
      ( "delta",
        [
          Alcotest.test_case "random mutations == rebuild (all prunings)"
            `Quick test_delta_equivalence_random;
          Alcotest.test_case "id discipline" `Quick test_delta_id_discipline;
        ] );
      ( "cluster_mutation",
        [
          Alcotest.test_case "1-shard == 4-shard == rebuild" `Quick
            test_cluster_mutation_equivalence;
          Alcotest.test_case "compaction folds the journal" `Quick
            test_cluster_compact;
          Alcotest.test_case "compact_save/compact_commit abort cleanly"
            `Quick test_cluster_compact_fault_sites;
          Alcotest.test_case "mutations survive shard kills" `Quick
            test_cluster_mutation_survives_shard_kills;
          Alcotest.test_case "health reports journal + compaction age" `Quick
            test_cluster_health_mutation_fields;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "generation stamp + legacy default" `Quick
            test_quarantine_gen_codec;
        ] );
    ]
