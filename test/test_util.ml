(* Tests for Faerie_util: PRNG, dynamic arrays, byte-size helpers. *)

module Xorshift = Faerie_util.Xorshift
module Dynarray = Faerie_util.Dynarray
module Bytesize = Faerie_util.Bytesize

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Xorshift                                                            *)
(* ------------------------------------------------------------------ *)

let test_deterministic () =
  let a = Xorshift.create 7 and b = Xorshift.create 7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Xorshift.bits64 a = Xorshift.bits64 b)
  done

let test_seed_zero_ok () =
  let rng = Xorshift.create 0 in
  let x = Xorshift.bits64 rng and y = Xorshift.bits64 rng in
  check_bool "zero seed produces a moving stream" true (x <> y)

let test_different_seeds_differ () =
  let a = Xorshift.create 1 and b = Xorshift.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Xorshift.bits64 a = Xorshift.bits64 b then incr same
  done;
  check_bool "streams differ" true (!same < 5)

let test_int_in_bounds () =
  let rng = Xorshift.create 11 in
  for _ = 1 to 1000 do
    let x = Xorshift.int rng 17 in
    check_bool "0 <= x < 17" true (x >= 0 && x < 17)
  done

let test_int_covers_range () =
  let rng = Xorshift.create 13 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Xorshift.int rng 5) <- true
  done;
  check_bool "all residues hit" true (Array.for_all Fun.id seen)

let test_int_invalid_bound () =
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Xorshift.int: bound must be positive") (fun () ->
      ignore (Xorshift.int (Xorshift.create 1) 0))

let test_int_in_range () =
  let rng = Xorshift.create 3 in
  for _ = 1 to 500 do
    let x = Xorshift.int_in_range rng ~lo:(-4) ~hi:9 in
    check_bool "in [-4,9]" true (x >= -4 && x <= 9)
  done;
  check_int "singleton range" 5 (Xorshift.int_in_range rng ~lo:5 ~hi:5)

let test_float_in_bounds () =
  let rng = Xorshift.create 5 in
  for _ = 1 to 1000 do
    let x = Xorshift.float rng 2.5 in
    check_bool "0 <= x < 2.5" true (x >= 0. && x < 2.5)
  done

let test_copy_independent () =
  let a = Xorshift.create 9 in
  ignore (Xorshift.bits64 a);
  let b = Xorshift.copy a in
  let xa = Xorshift.bits64 a and xb = Xorshift.bits64 b in
  check_bool "copies continue identically" true (xa = xb);
  ignore (Xorshift.bits64 a);
  let xa2 = Xorshift.bits64 a and xb2 = Xorshift.bits64 b in
  check_bool "then diverge independently" true (xa2 <> xb2 || xa2 = xb2)

let test_choose () =
  let rng = Xorshift.create 21 in
  let arr = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    check_bool "chosen from array" true (Array.mem (Xorshift.choose rng arr) arr)
  done

let test_shuffle_permutation () =
  let rng = Xorshift.create 17 in
  let arr = Array.init 30 Fun.id in
  Xorshift.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 30 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Dynarray                                                            *)
(* ------------------------------------------------------------------ *)

let test_push_get () =
  let d = Dynarray.create () in
  for i = 0 to 99 do
    Dynarray.push d (i * i)
  done;
  check_int "length" 100 (Dynarray.length d);
  for i = 0 to 99 do
    check_int "get" (i * i) (Dynarray.get d i)
  done

let test_pop_lifo () =
  let d = Dynarray.of_list [ 1; 2; 3 ] in
  check_int "pop 3" 3 (Dynarray.pop d);
  check_int "pop 2" 2 (Dynarray.pop d);
  check_int "length after pops" 1 (Dynarray.length d);
  check_int "pop 1" 1 (Dynarray.pop d);
  check_bool "empty" true (Dynarray.is_empty d)

let test_pop_empty_raises () =
  Alcotest.check_raises "pop on empty" (Invalid_argument "Dynarray.pop: empty")
    (fun () -> ignore (Dynarray.pop (Dynarray.create () : int Dynarray.t)))

let test_get_out_of_bounds () =
  let d = Dynarray.of_list [ 1 ] in
  check_bool "raises" true
    (try
       ignore (Dynarray.get d 1);
       false
     with Invalid_argument _ -> true)

let test_clear_reuse () =
  let d = Dynarray.create () in
  Dynarray.push d 1;
  Dynarray.push d 2;
  Dynarray.clear d;
  check_bool "empty after clear" true (Dynarray.is_empty d);
  Dynarray.push d 7;
  check_int "reusable" 7 (Dynarray.get d 0)

let test_set () =
  let d = Dynarray.of_list [ 1; 2; 3 ] in
  Dynarray.set d 1 42;
  Alcotest.(check (list int)) "set" [ 1; 42; 3 ] (Dynarray.to_list d)

let test_make () =
  let d = Dynarray.make 4 9 in
  Alcotest.(check (list int)) "make" [ 9; 9; 9; 9 ] (Dynarray.to_list d)

let test_last () =
  let d = Dynarray.of_list [ 5; 6 ] in
  check_int "last" 6 (Dynarray.last d)

let test_iter_order () =
  let d = Dynarray.of_list [ 3; 1; 4 ] in
  let acc = ref [] in
  Dynarray.iter (fun x -> acc := x :: !acc) d;
  Alcotest.(check (list int)) "iter order" [ 4; 1; 3 ] !acc

let test_iteri () =
  let d = Dynarray.of_list [ 10; 20 ] in
  let acc = ref [] in
  Dynarray.iteri (fun i x -> acc := (i, x) :: !acc) d;
  Alcotest.(check (list (pair int int))) "iteri" [ (1, 20); (0, 10) ] !acc

let test_fold () =
  let d = Dynarray.of_list [ 1; 2; 3; 4 ] in
  check_int "fold sum" 10 (Dynarray.fold_left ( + ) 0 d)

let test_sort () =
  let d = Dynarray.of_list [ 3; 1; 2 ] in
  Dynarray.sort compare d;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Dynarray.to_list d)

let test_exists () =
  let d = Dynarray.of_list [ 1; 3; 5 ] in
  check_bool "exists odd" true (Dynarray.exists (fun x -> x = 3) d);
  check_bool "no even" false (Dynarray.exists (fun x -> x mod 2 = 0) d)

let test_to_array_detached () =
  let d = Dynarray.of_list [ 1; 2 ] in
  let a = Dynarray.to_array d in
  a.(0) <- 99;
  check_int "original unchanged" 1 (Dynarray.get d 0)

let prop_dynarray_mirrors_list =
  QCheck.Test.make ~count:200 ~name:"dynarray push mirrors list"
    QCheck.(list small_int)
    (fun l ->
      let d = Dynarray.create () in
      List.iter (Dynarray.push d) l;
      Dynarray.to_list d = l)

(* ------------------------------------------------------------------ *)
(* Bytesize                                                            *)
(* ------------------------------------------------------------------ *)

let test_bytes_of_words () =
  check_int "words to bytes" 80 (Bytesize.bytes_of_words 10)

let test_int_array_words () =
  check_int "int array words" 11 (Bytesize.words_per_int_array 10)

let test_string_bytes_positive () =
  check_bool "non-empty string accounted" true (Bytesize.string_bytes "abc" >= 16)

let test_pp_units () =
  Alcotest.(check string) "bytes" "512 B" (Bytesize.to_string 512);
  Alcotest.(check string) "kb" "4.0 KB" (Bytesize.to_string 4096);
  Alcotest.(check string) "mb" "2.0 MB" (Bytesize.to_string (2 * 1024 * 1024))

(* ------------------------------------------------------------------ *)
(* Varint                                                              *)
(* ------------------------------------------------------------------ *)

module Varint = Faerie_util.Varint

let test_varint_known_encodings () =
  let enc n =
    let b = Buffer.create 8 in
    Varint.write b n;
    Buffer.contents b
  in
  Alcotest.(check string) "0" "\x00" (enc 0);
  Alcotest.(check string) "127" "\x7f" (enc 127);
  Alcotest.(check string) "128" "\x80\x01" (enc 128);
  Alcotest.(check string) "300" "\xac\x02" (enc 300)

let test_varint_negative_rejected () =
  check_bool "raises" true
    (try
       Varint.write (Buffer.create 4) (-1);
       false
     with Invalid_argument _ -> true)

let test_varint_truncated () =
  check_bool "truncated varint" true
    (try
       ignore (Varint.read (Varint.reader "\x80"));
       false
     with Varint.Malformed _ -> true);
  check_bool "truncated string" true
    (try
       ignore (Varint.read_string (Varint.reader "\x05ab"));
       false
     with Varint.Malformed _ -> true)

let test_varint_expect () =
  let r = Varint.reader "MAGICrest" in
  Varint.expect r "MAGIC";
  check_int "pos" 5 (Varint.pos r);
  check_bool "mismatch raises" true
    (try
       Varint.expect r "nope";
       false
     with Varint.Malformed _ -> true)

let prop_varint_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"varint roundtrip"
    QCheck.(list (map abs small_signed_int))
    (fun ns ->
      let b = Buffer.create 64 in
      List.iter (Varint.write b) ns;
      let r = Varint.reader (Buffer.contents b) in
      List.for_all (fun n -> Varint.read r = n) ns && Varint.at_end r)

let prop_varint_large_roundtrip =
  QCheck.Test.make ~count:500 ~name:"varint roundtrip (large ints)"
    QCheck.(map abs int)
    (fun n ->
      let b = Buffer.create 10 in
      Varint.write b n;
      Varint.read (Varint.reader (Buffer.contents b)) = n)

let prop_varint_string_roundtrip =
  QCheck.Test.make ~count:500 ~name:"string roundtrip"
    QCheck.(small_list string)
    (fun ss ->
      let b = Buffer.create 64 in
      List.iter (Varint.write_string b) ss;
      let r = Varint.reader (Buffer.contents b) in
      List.for_all (fun s -> String.equal (Varint.read_string r) s) ss)

let test_fnv1a_distinguishes () =
  check_bool "deterministic" true (Varint.fnv1a "abc" = Varint.fnv1a "abc");
  check_bool "order sensitive" true (Varint.fnv1a "ab" <> Varint.fnv1a "ba");
  check_bool "non-negative" true (Varint.fnv1a "anything" >= 0)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

module Json = Faerie_util.Json

let test_json_print () =
  Alcotest.(check string)
    "composite value"
    {|{"a":1,"b":[true,null,"x\n"],"c":{"d":0.5}}|}
    (Json.to_string
       (Json.Obj
          [
            ("a", Json.Num 1.);
            ( "b",
              Json.List [ Json.Bool true; Json.Null; Json.Str "x\n" ] );
            ("c", Json.Obj [ ("d", Json.Num 0.5) ]);
          ]));
  Alcotest.(check string)
    "integral floats print as ints" {|[3,-3,300000]|}
    (Json.to_string (Json.List [ Json.Num 3.; Json.Num (-3.); Json.Num 3e5 ]));
  Alcotest.(check string)
    "non-finite numbers become null" {|[null,null]|}
    (Json.to_string (Json.List [ Json.Num Float.nan; Json.Num Float.infinity ]))

let test_json_parse () =
  check_bool "round-trip"
    true
    (let v =
       Json.Obj
         [
           ("id", Json.Str "a\"b\\c\n");
           ("n", Json.Num 42.);
           ("xs", Json.List [ Json.Num 1.5; Json.Bool false; Json.Null ]);
         ]
     in
     Json.of_string (Json.to_string v) = Ok v);
  check_bool "unicode escapes decode to UTF-8" true
    (Json.of_string {|"é😀"|} = Ok (Json.Str "\xc3\xa9\xf0\x9f\x98\x80"));
  check_bool "whitespace tolerated" true
    (Json.of_string " { \"a\" : [ 1 , 2 ] } "
    = Ok (Json.Obj [ ("a", Json.List [ Json.Num 1.; Json.Num 2. ]) ]));
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed JSON: %s" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_json_accessors () =
  let j =
    match Json.of_string {|{"s":"x","n":3,"b":true,"xs":[1],"o":{"k":0}}|} with
    | Ok j -> j
    | Error e -> Alcotest.failf "parse: %s" e
  in
  check_bool "member + to_str" true
    (Option.bind (Json.member "s" j) Json.to_str = Some "x");
  check_bool "member + to_int" true
    (Option.bind (Json.member "n" j) Json.to_int = Some 3);
  check_bool "member + to_bool" true
    (Option.bind (Json.member "b" j) Json.to_bool = Some true);
  check_bool "member + to_list" true
    (Option.bind (Json.member "xs" j) Json.to_list = Some [ Json.Num 1. ]);
  check_bool "missing member" true (Json.member "zz" j = None);
  check_bool "kind mismatch is None" true
    (Option.bind (Json.member "s" j) Json.to_int = None)

let prop_json_roundtrip =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Num (float_of_int i)) small_signed_int;
                map (fun s -> Json.Str s) small_string;
              ]
          in
          if n <= 0 then leaf
          else
            oneof
              [
                leaf;
                map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)));
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (int_bound 4)
                     (pair small_string (self (n / 2))));
              ]))
  in
  QCheck.Test.make ~count:300 ~name:"json print/parse roundtrip"
    (QCheck.make gen)
    (fun v -> Json.of_string (Json.to_string v) = Ok v)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faerie_util"
    [
      ( "xorshift",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed zero ok" `Quick test_seed_zero_ok;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
          Alcotest.test_case "int in bounds" `Quick test_int_in_bounds;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "int invalid bound" `Quick test_int_invalid_bound;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "float in bounds" `Quick test_float_in_bounds;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "shuffle is permutation" `Quick
            test_shuffle_permutation;
        ] );
      ( "dynarray",
        [
          Alcotest.test_case "push/get" `Quick test_push_get;
          Alcotest.test_case "pop lifo" `Quick test_pop_lifo;
          Alcotest.test_case "pop empty raises" `Quick test_pop_empty_raises;
          Alcotest.test_case "get out of bounds" `Quick test_get_out_of_bounds;
          Alcotest.test_case "clear and reuse" `Quick test_clear_reuse;
          Alcotest.test_case "set" `Quick test_set;
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "last" `Quick test_last;
          Alcotest.test_case "iter order" `Quick test_iter_order;
          Alcotest.test_case "iteri" `Quick test_iteri;
          Alcotest.test_case "fold" `Quick test_fold;
          Alcotest.test_case "sort" `Quick test_sort;
          Alcotest.test_case "exists" `Quick test_exists;
          Alcotest.test_case "to_array detached" `Quick test_to_array_detached;
          q prop_dynarray_mirrors_list;
        ] );
      ( "bytesize",
        [
          Alcotest.test_case "bytes_of_words" `Quick test_bytes_of_words;
          Alcotest.test_case "int array words" `Quick test_int_array_words;
          Alcotest.test_case "string bytes" `Quick test_string_bytes_positive;
          Alcotest.test_case "pp units" `Quick test_pp_units;
        ] );
      ( "varint",
        [
          Alcotest.test_case "known encodings" `Quick test_varint_known_encodings;
          Alcotest.test_case "negative rejected" `Quick test_varint_negative_rejected;
          Alcotest.test_case "truncated" `Quick test_varint_truncated;
          Alcotest.test_case "expect" `Quick test_varint_expect;
          Alcotest.test_case "fnv1a" `Quick test_fnv1a_distinguishes;
          q prop_varint_roundtrip;
          q prop_varint_large_roundtrip;
          q prop_varint_string_roundtrip;
        ] );
      ( "json",
        [
          Alcotest.test_case "print" `Quick test_json_print;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          q prop_json_roundtrip;
        ] );
    ]
