(* Observability tests: metrics registry vs. pipeline statistics, shard
   merging across domains, trace span nesting under injected faults, and
   the exported JSON schemas (locked with a deterministic clock). *)

module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Explain = Faerie_obs.Explain
module Perf = Faerie_obs.Perf
module Fault = Faerie_util.Fault
module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Single_heap = Core.Single_heap
module Extractor = Core.Extractor
module Parallel = Core.Parallel
module Outcome = Core.Outcome

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let paper_dict =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let paper_doc =
  "an efficient filter for approximate membership checking. venkaee shga \
   kamunshik kabarati, dong xin, surauijt chadhurisigmod."

(* ------------------------------------------------------------------ *)
(* (a) registry counters agree with Types.stats at every pruning level *)
(* ------------------------------------------------------------------ *)

let counter_name_of_level = function
  | Types.No_prune -> "candidates_generated_none"
  | Types.Lazy_count -> "candidates_generated_lazy"
  | Types.Bucket_count -> "candidates_generated_bucket"
  | Types.Binary_window -> "candidates_generated_binary"

let test_counters_match_stats () =
  let problem = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let doc = Problem.tokenize_document problem paper_doc in
  List.iter
    (fun pruning ->
      Metrics.reset ();
      let r = Single_heap.run_budgeted ~pruning problem doc in
      let stats = r.Single_heap.stats in
      let snap = Metrics.snapshot () in
      let level = Types.pruning_name pruning in
      let eq name v = check_int (level ^ ": " ^ name) v (Metrics.counter_value snap name) in
      eq "candidates_generated" stats.Types.candidates;
      eq (counter_name_of_level pruning) stats.Types.candidates;
      eq "entities_seen" stats.Types.entities_seen;
      eq "entities_pruned_lazy" stats.Types.entities_pruned_lazy;
      eq "buckets_pruned" stats.Types.buckets_pruned;
      eq "filter_survivors" stats.Types.survivors;
      (* Every surviving candidate is verified exactly once on the indexed
         path, so the verify-call counter equals the survivor count. *)
      eq "verify_calls" stats.Types.survivors;
      eq "matches_verified" stats.Types.verified)
    Types.all_prunings

let test_metrics_suppressed_run () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  Metrics.reset ();
  let opts = { Extractor.default_opts with Extractor.metrics = false } in
  let report = Extractor.run ~opts ex (`Text paper_doc) in
  check_bool "run succeeded" true (Outcome.is_ok report.Extractor.outcome);
  check_bool "stats still populated" true (report.Extractor.stats.Types.candidates > 0);
  let snap = Metrics.snapshot () in
  check_int "no candidates recorded" 0 (Metrics.counter_value snap "candidates_generated");
  check_int "no docs recorded" 0 (Metrics.counter_value snap "docs_processed");
  (* Suppression is per-run, not sticky. *)
  let report2 = Extractor.run ex (`Text paper_doc) in
  check_bool "second run ok" true (Outcome.is_ok report2.Extractor.outcome);
  let snap2 = Metrics.snapshot () in
  check_int "second run recorded" 1 (Metrics.counter_value snap2 "docs_processed")

(* ------------------------------------------------------------------ *)
(* (b) histogram bucket totals equal observation counts                *)
(* ------------------------------------------------------------------ *)

let test_histogram_totals () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2.; 5. |] "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.; 1.5; 2.; 4.9; 5.; 100.; 1000. ];
  let snap = Metrics.snapshot ~registry:reg () in
  match snap.Metrics.histograms with
  | [ ("h", hs) ] ->
      check_int "count" 8 hs.Metrics.count;
      check_int "cells" 4 (Array.length hs.Metrics.counts);
      check_int "bucket totals = count" hs.Metrics.count
        (Array.fold_left ( + ) 0 hs.Metrics.counts);
      Alcotest.(check (array int)) "per-cell" [| 2; 2; 2; 2 |] hs.Metrics.counts;
      Alcotest.(check (float 1e-9)) "sum" 1114.9 hs.Metrics.sum
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_pipeline_histogram_totals () =
  Metrics.reset ();
  let ex = Extractor.create ~sim:(Sim.Jaccard 0.8) paper_dict in
  let _ = Extractor.run ex (`Text paper_doc) in
  let snap = Metrics.snapshot () in
  check_bool "has histograms" true (snap.Metrics.histograms <> []);
  List.iter
    (fun (name, hs) ->
      check_int
        (name ^ ": bucket totals = count")
        hs.Metrics.count
        (Array.fold_left ( + ) 0 hs.Metrics.counts))
    snap.Metrics.histograms

(* ------------------------------------------------------------------ *)
(* (c) spans nest and close correctly under an injected fault          *)
(* ------------------------------------------------------------------ *)

let with_deterministic_clock f =
  let t = ref 0L in
  Trace.set_clock (Some (fun () -> t := Int64.add !t 10L; !t));
  Trace.enable ();
  ignore (Trace.drain ());
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.set_clock None;
      ignore (Trace.drain ()))
    f

let test_spans_nest_under_fault () =
  with_deterministic_clock @@ fun () ->
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  ignore (Trace.drain ());
  Fault.configure { Fault.seed = 1; rates = [ ("heap_merge", 1.0) ] };
  let report =
    Fun.protect ~finally:Fault.disarm (fun () ->
        Extractor.run ex (`Text paper_doc))
  in
  (match report.Extractor.outcome with
  | Outcome.Failed (Outcome.Injected_fault "heap_merge") -> ()
  | _ -> Alcotest.fail "expected Failed (Injected_fault heap_merge)");
  let spans = Trace.drain () in
  let find name =
    match List.find_opt (fun s -> s.Trace.name = name) spans with
    | Some s -> s
    | None -> Alcotest.fail ("missing span " ^ name)
  in
  let root = find "extract_doc" in
  let tokenize = find "tokenize" in
  let filter = find "filter" in
  (* The fault fires at the heap_merge site before the merge span opens, so
     the filter span is the innermost one crossed by the exception. *)
  check_int "root depth" 0 root.Trace.depth;
  check_int "tokenize depth" 1 tokenize.Trace.depth;
  check_int "filter depth" 1 filter.Trace.depth;
  check_bool "root closed ok (fault contained inside)" true root.Trace.ok;
  check_bool "tokenize ok" true tokenize.Trace.ok;
  check_bool "filter closed by exception" false filter.Trace.ok;
  let inside inner outer =
    inner.Trace.start_ns >= outer.Trace.start_ns
    && Int64.add inner.Trace.start_ns inner.Trace.dur_ns
       <= Int64.add outer.Trace.start_ns outer.Trace.dur_ns
  in
  check_bool "tokenize inside root" true (inside tokenize root);
  check_bool "filter inside root" true (inside filter root);
  check_bool "every span closed (drain empty)" true (Trace.drain () = [])

(* ------------------------------------------------------------------ *)
(* (d) multi-domain shard merge loses no counts                        *)
(* ------------------------------------------------------------------ *)

let test_parallel_shard_merge () =
  let problem = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let docs =
    Array.init 12 (fun i ->
        if i mod 3 = 0 then paper_doc
        else if i mod 3 = 1 then "surauijt chadhuri and venkatesh"
        else "no entities here at all")
  in
  let tracked =
    [
      "docs_processed"; "docs_ok"; "tokenize_calls"; "tokenize_tokens";
      "heap_pops"; "heap_merge_runs"; "candidates_generated"; "verify_calls";
      "filter_survivors"; "matches_verified"; "entities_seen";
    ]
  in
  let totals domains =
    Metrics.reset ();
    let outcomes, summary =
      Parallel.extract_all_outcomes ~domains problem docs
    in
    check_int "all docs processed" 12 (Array.length outcomes);
    check_int "all ok" 12 summary.Outcome.n_ok;
    let snap = Metrics.snapshot () in
    List.map (fun name -> (name, Metrics.counter_value snap name)) tracked
  in
  let sequential = totals 1 in
  let parallel = totals 4 in
  List.iter2
    (fun (name, a) (name', b) ->
      check_string "same counter" name name';
      check_int ("4-domain total matches sequential: " ^ name) a b)
    sequential parallel;
  check_int "docs_processed"
    (List.assoc "docs_processed" parallel)
    (Array.length docs)

(* ------------------------------------------------------------------ *)
(* Exported JSON schemas (locked)                                      *)
(* ------------------------------------------------------------------ *)

let test_metrics_jsonl_schema () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~help:"a counter" "alpha" in
  let g = Metrics.gauge ~registry:reg "beta" in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2. |] "gamma" in
  Metrics.add c 3;
  Metrics.set g 1.5;
  Metrics.observe h 0.5;
  Metrics.observe h 3.;
  check_string "jsonl schema"
    ("{\"type\":\"counter\",\"name\":\"alpha\",\"value\":3}\n"
   ^ "{\"type\":\"gauge\",\"name\":\"beta\",\"value\":1.5}\n"
   ^ "{\"type\":\"histogram\",\"name\":\"gamma\",\"upper\":[1,2],\"counts\":[1,0,1],\"sum\":3.5,\"count\":2}\n"
    )
    (Metrics.to_jsonl ~registry:reg ())

let test_prometheus_schema () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~help:"a counter" "alpha" in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2. |] "gamma" in
  Metrics.add c 3;
  Metrics.observe h 0.5;
  Metrics.observe h 3.;
  check_string "prometheus schema"
    ("# HELP alpha a counter\n# TYPE alpha counter\nalpha 3\n"
   ^ "# TYPE gamma histogram\n"
   ^ "gamma_bucket{le=\"1\"} 1\ngamma_bucket{le=\"2\"} 1\n"
   ^ "gamma_bucket{le=\"+Inf\"} 2\ngamma_sum 3.5\ngamma_count 2\n")
    (Metrics.to_prometheus ~registry:reg ())

let test_trace_jsonl_schema () =
  with_deterministic_clock @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span ~attrs:[ ("k", "v\"w") ] "inner" (fun () -> ()));
  let spans = Trace.drain () in
  let domain = (Domain.self () :> int) in
  check_string "trace jsonl schema"
    (Printf.sprintf
       "{\"name\":\"outer\",\"start_ns\":10,\"dur_ns\":30,\"depth\":0,\"domain\":%d,\"ok\":true,\"attrs\":{}}\n\
        {\"name\":\"inner\",\"start_ns\":20,\"dur_ns\":10,\"depth\":1,\"domain\":%d,\"ok\":true,\"attrs\":{\"k\":\"v\\\"w\"}}\n"
       domain domain)
    (Trace.to_jsonl spans)

(* ------------------------------------------------------------------ *)
(* (e) Explain waterfall agrees with Types.stats at every level        *)
(* ------------------------------------------------------------------ *)

let test_explain_matches_stats () =
  List.iter
    (fun pruning ->
      let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
      let sink = Explain.create () in
      let opts =
        { Extractor.default_opts with Extractor.pruning; explain = Some sink }
      in
      let report = Extractor.run ~opts ex (`Text paper_doc) in
      check_bool "run succeeded" true (Outcome.is_ok report.Extractor.outcome);
      let stats = report.Extractor.stats in
      let s = Explain.summarize sink in
      let level = Types.pruning_name pruning in
      let eq name a b = check_int (level ^ ": " ^ name) a b in
      eq "docs" 1 s.Explain.docs;
      eq "entities_seen" stats.Types.entities_seen s.Explain.entities_seen;
      eq "pruned_lazy" stats.Types.entities_pruned_lazy s.Explain.pruned_lazy;
      eq "buckets_pruned" stats.Types.buckets_pruned s.Explain.buckets_pruned;
      eq "candidates" stats.Types.candidates s.Explain.candidates;
      eq "survivors" stats.Types.survivors s.Explain.survivors;
      eq "verify_calls" stats.Types.survivors s.Explain.verify_calls;
      eq "matched" stats.Types.verified s.Explain.matched;
      (* Dedup can only shrink the surviving candidate set. *)
      check_bool (level ^ ": dedup shrinks") true
        (s.Explain.candidates_survived >= s.Explain.survivors);
      (* The log itself is well-formed: opens with the document marker. *)
      (match Explain.events sink with
      | Explain.Doc { doc_id = 0 } :: _ -> ()
      | _ -> Alcotest.fail (level ^ ": first event must be Doc"));
      check_bool (level ^ ": events recorded") true (Explain.length sink > 1))
    Types.all_prunings

let test_explain_sink_reuse_accumulates () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let sink = Explain.create () in
  let opts = { Extractor.default_opts with Extractor.explain = Some sink } in
  let r1 = Extractor.run ~opts ex (`Text paper_doc) in
  let r2 = Extractor.run ~opts ex (`Text paper_doc) in
  check_bool "both ok" true
    (Outcome.is_ok r1.Extractor.outcome && Outcome.is_ok r2.Extractor.outcome);
  let s = Explain.summarize sink in
  check_int "two docs audited" 2 s.Explain.docs;
  check_int "stats sum across documents"
    (r1.Extractor.stats.Types.candidates + r2.Extractor.stats.Types.candidates)
    s.Explain.candidates;
  Explain.clear sink;
  check_int "clear empties the log" 0 (Explain.length sink)

let test_explain_disarmed_is_inert () =
  check_bool "disarmed by default" false (Explain.armed ());
  check_bool "no current sink" true (Explain.current () = None);
  (* Hook entry points are no-ops without a sink. *)
  Explain.record (Explain.Filter_done { survivors = 1 });
  Explain.skip Explain.Span_pruned;
  let sink = Explain.create () in
  (try
     Explain.with_sink sink (fun () ->
         check_bool "armed inside" true (Explain.armed ());
         check_bool "current inside" true (Explain.current () = Some sink);
         failwith "boom")
   with Failure _ -> ());
  check_bool "disarmed after exception" false (Explain.armed ());
  check_bool "no sink after exception" true (Explain.current () = None);
  check_int "stray records went nowhere" 0 (Explain.length sink)

let test_explain_jsonl_schema () =
  let sink = Explain.create () in
  List.iter
    (Explain.emit sink)
    [
      Explain.Doc { doc_id = 0 };
      Explain.Entity { entity = 3; e_len = 2; n_positions = 5 };
      Explain.Pruned
        { entity = 3; reason = Explain.Lazy_bound { tl = 2; count = 1 } };
      Explain.Pruned { entity = 4; reason = Explain.Bucket_pruned };
      Explain.Window { entity = 3; first = 0; last = 4 };
      Explain.Window_skip { entity = 3; reason = Explain.Span_pruned };
      Explain.Window_skip { entity = 3; reason = Explain.Shift_jumped 5 };
      Explain.Candidate
        { entity = 3; start = 7; len = 2; count = 2; t = 2; survived = true };
      Explain.Filter_done { survivors = 12 };
      Explain.Verify { entity = 3; start = 7; len = 2; matched = true };
      Explain.Selection { total = 9; kept = 4 };
    ];
  check_string "explain jsonl schema"
    "{\"ev\":\"doc\",\"doc_id\":0}\n\
     {\"ev\":\"entity\",\"entity\":3,\"e_len\":2,\"positions\":5}\n\
     {\"ev\":\"pruned\",\"entity\":3,\"reason\":\"lazy\",\"tl\":2,\"count\":1}\n\
     {\"ev\":\"pruned\",\"entity\":4,\"reason\":\"bucket\"}\n\
     {\"ev\":\"window\",\"entity\":3,\"first\":0,\"last\":4}\n\
     {\"ev\":\"window_skip\",\"entity\":3,\"reason\":\"span\"}\n\
     {\"ev\":\"window_skip\",\"entity\":3,\"reason\":\"shift\",\"jump\":5}\n\
     {\"ev\":\"candidate\",\"entity\":3,\"start\":7,\"len\":2,\"count\":2,\"t\":2,\"survived\":true}\n\
     {\"ev\":\"filter_done\",\"survivors\":12}\n\
     {\"ev\":\"verify\",\"entity\":3,\"start\":7,\"len\":2,\"matched\":true}\n\
     {\"ev\":\"selection\",\"total\":9,\"kept\":4}\n"
    (Explain.to_jsonl sink)

(* ------------------------------------------------------------------ *)
(* (f) Perf: quantiles, bench snapshot codec, regression comparison    *)
(* ------------------------------------------------------------------ *)

let hist ~upper ~counts =
  {
    Metrics.upper;
    counts;
    sum = 0.;
    count = Array.fold_left ( + ) 0 counts;
  }

let check_float = Alcotest.(check (float 1e-9))

let test_quantile () =
  let h = hist ~upper:[| 10.; 20.; 30. |] ~counts:[| 1; 1; 1; 0 |] in
  check_float "median interpolates" 15. (Perf.quantile h 0.5);
  check_float "q=1 hits last bound" 30. (Perf.quantile h 1.0);
  let skewed = hist ~upper:[| 10.; 20.; 30. |] ~counts:[| 10; 0; 0; 0 |] in
  check_float "all mass in first bucket" 5. (Perf.quantile skewed 0.5);
  let overflow = hist ~upper:[| 10.; 20.; 30. |] ~counts:[| 0; 0; 0; 2 |] in
  check_float "overflow reports last bound" 30. (Perf.quantile overflow 0.5);
  let empty = hist ~upper:[| 10. |] ~counts:[| 0; 0 |] in
  check_bool "empty is nan" true (Float.is_nan (Perf.quantile empty 0.5));
  (match Perf.quantile h 1.5 with
  | _ -> Alcotest.fail "q out of range must be rejected"
  | exception Invalid_argument _ -> ())

let sample_bench =
  {
    Perf.schema = Perf.schema_version;
    git_rev = "abc1234";
    scale = 1.0;
    ocaml = "5.1.1";
    exhibits =
      [
        {
          Perf.ex_name = "smoke";
          wall_s = 0.5;
          tokens = 100;
          tokens_per_s = 200.;
          candidates = 10;
          pruned = 4;
          verify_calls = 8;
          matches = 3;
          p50_ns = 1500.;
          p90_ns = 2000.;
          p99_ns = nan;
        };
      ];
  }

let test_bench_json_schema () =
  check_string "bench json schema"
    "{\"schema\":\"faerie-bench-v1\",\"git_rev\":\"abc1234\",\"scale\":1,\"ocaml\":\"5.1.1\",\"exhibits\":[\n\
     {\"name\":\"smoke\",\"wall_s\":0.5,\"tokens\":100,\"tokens_per_s\":200,\"candidates\":10,\"pruned\":4,\"verify_calls\":8,\"matches\":3,\"doc_wall_ns\":{\"p50\":1500,\"p90\":2000,\"p99\":null}}\n\
     ]}\n"
    (Perf.bench_to_json sample_bench)

let test_bench_json_roundtrip () =
  match Perf.bench_of_json (Perf.bench_to_json sample_bench) with
  | Error e -> Alcotest.fail ("roundtrip failed: " ^ e)
  | Ok b -> (
      check_string "schema" sample_bench.Perf.schema b.Perf.schema;
      check_string "git_rev" "abc1234" b.Perf.git_rev;
      check_float "scale" 1.0 b.Perf.scale;
      check_string "ocaml" "5.1.1" b.Perf.ocaml;
      match b.Perf.exhibits with
      | [ e ] ->
          let o = List.hd sample_bench.Perf.exhibits in
          check_string "name" o.Perf.ex_name e.Perf.ex_name;
          check_float "wall_s" o.Perf.wall_s e.Perf.wall_s;
          check_int "tokens" o.Perf.tokens e.Perf.tokens;
          check_float "tokens_per_s" o.Perf.tokens_per_s e.Perf.tokens_per_s;
          check_int "candidates" o.Perf.candidates e.Perf.candidates;
          check_int "pruned" o.Perf.pruned e.Perf.pruned;
          check_int "verify_calls" o.Perf.verify_calls e.Perf.verify_calls;
          check_int "matches" o.Perf.matches e.Perf.matches;
          check_float "p50" o.Perf.p50_ns e.Perf.p50_ns;
          check_float "p90" o.Perf.p90_ns e.Perf.p90_ns;
          check_bool "null p99 roundtrips to nan" true
            (Float.is_nan e.Perf.p99_ns)
      | l -> Alcotest.failf "expected 1 exhibit, got %d" (List.length l))

let test_bench_json_rejects () =
  (match Perf.bench_of_json "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse");
  (match
     Perf.bench_of_json "{\"schema\":\"faerie-bench-v0\",\"exhibits\":[]}"
   with
  | Error e ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      check_bool "schema version named" true (contains e "faerie-bench-v0")
  | Ok _ -> Alcotest.fail "wrong schema version must be rejected");
  match Perf.bench_of_json "{\"schema\":\"faerie-bench-v1\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing exhibits must be rejected"

let test_compare_benches () =
  let with_wall w =
    {
      sample_bench with
      Perf.exhibits =
        List.map
          (fun e -> { e with Perf.wall_s = w })
          sample_bench.Perf.exhibits;
    }
  in
  (* Identical snapshot: pass, ratio 1. *)
  let c =
    Perf.compare_benches ~baseline:sample_bench ~current:sample_bench ()
  in
  check_bool "identical passes" false c.Perf.any_regressed;
  (match c.Perf.verdicts with
  | [ v ] ->
      check_float "ratio 1" 1.0 v.Perf.ratio;
      check_bool "not regressed" false v.Perf.regressed
  | _ -> Alcotest.fail "expected one verdict");
  (* Synthetic 2x slowdown: flagged at the default 1.5 ratio. *)
  let c =
    Perf.compare_benches ~baseline:sample_bench ~current:(with_wall 1.0) ()
  in
  check_bool "2x slowdown regresses" true c.Perf.any_regressed;
  (match c.Perf.verdicts with
  | [ v ] ->
      check_float "ratio 2" 2.0 v.Perf.ratio;
      check_bool "flagged" true v.Perf.regressed
  | _ -> Alcotest.fail "expected one verdict");
  (* A generous gate tolerates the same slowdown. *)
  let c =
    Perf.compare_benches ~max_ratio:3.0 ~baseline:sample_bench
      ~current:(with_wall 1.0) ()
  in
  check_bool "max-ratio 3 tolerates 2x" false c.Perf.any_regressed;
  (* A baseline exhibit missing from current is a regression. *)
  let c =
    Perf.compare_benches ~baseline:sample_bench
      ~current:{ sample_bench with Perf.exhibits = [] }
      ()
  in
  check_bool "missing exhibit regresses" true c.Perf.any_regressed;
  Alcotest.(check (list string)) "missing named" [ "smoke" ] c.Perf.missing;
  (* Extra exhibits in current are not regressions. *)
  let c =
    Perf.compare_benches
      ~baseline:{ sample_bench with Perf.exhibits = [] }
      ~current:sample_bench ()
  in
  check_bool "new exhibit ignored" false c.Perf.any_regressed;
  check_int "no verdicts" 0 (List.length c.Perf.verdicts)

(* ------------------------------------------------------------------ *)
(* (g) Prometheus escaping, trace drain ordering, suppression nesting  *)
(* ------------------------------------------------------------------ *)

let test_prometheus_hostile_help () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~help:"line1\nline2\\end" "hostile" in
  Metrics.add c 2;
  check_string "help newline and backslash escaped"
    "# HELP hostile line1\\nline2\\\\end\n# TYPE hostile counter\nhostile 2\n"
    (Metrics.to_prometheus ~registry:reg ())

let test_trace_drain_cross_domain () =
  with_deterministic_clock @@ fun () ->
  Trace.with_span "alpha" (fun () -> ());
  Domain.join
    (Domain.spawn (fun () -> Trace.with_span "beta" (fun () -> ())));
  Domain.join
    (Domain.spawn (fun () -> Trace.with_span "gamma" (fun () -> ())));
  Trace.with_span "delta" (fun () -> ());
  let spans = Trace.drain () in
  Alcotest.(check (list string))
    "time-ordered across domains"
    [ "alpha"; "beta"; "gamma"; "delta" ]
    (List.map (fun s -> s.Trace.name) spans);
  (* The injected clock ticks 10ns per read; each span reads it twice, so
     start times are fully determined. *)
  Alcotest.(check (list int))
    "deterministic start times" [ 10; 30; 50; 70 ]
    (List.map (fun s -> Int64.to_int s.Trace.start_ns) spans);
  let dom i = (List.nth spans i).Trace.domain in
  check_bool "beta recorded on its own domain" true (dom 1 <> dom 0);
  check_bool "gamma on a third buffer" true (dom 2 <> dom 0);
  check_bool "drain cleared every buffer" true (Trace.drain () = [])

let test_suppressed_nesting_exception () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "c" in
  Metrics.with_suppressed ~registry:reg (fun () ->
      Metrics.incr c;
      (try
         Metrics.with_suppressed ~registry:reg (fun () ->
             Metrics.incr c;
             failwith "boom")
       with Failure _ -> ());
      (* The inner exception must not tear down the outer suppression. *)
      Metrics.incr c);
  Metrics.incr c;
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "only the unsuppressed write lands" 1
    (Metrics.counter_value snap "c")

(* ------------------------------------------------------------------ *)
(* Registry mechanics                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry_mechanics () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "c" in
  let c' = Metrics.counter ~registry:reg "c" in
  Metrics.incr c;
  Metrics.incr c';
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "same name = same counter" 2 (Metrics.counter_value snap "c");
  (match Metrics.gauge ~registry:reg "c" with
  | _ -> Alcotest.fail "kind mismatch must be rejected"
  | exception Invalid_argument _ -> ());
  (* Late registration after a shard exists grows the shard on write. *)
  let d = Metrics.counter ~registry:reg "late" in
  Metrics.add d 7;
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "late counter" 7 (Metrics.counter_value snap "late");
  Metrics.reset ~registry:reg ();
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "reset zeroes" 0 (Metrics.counter_value snap "c");
  (match Metrics.add c (-1) with
  | () -> Alcotest.fail "negative add must be rejected"
  | exception Invalid_argument _ -> ())

let () =
  Alcotest.run "faerie_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters match stats at every pruning level"
            `Quick test_counters_match_stats;
          Alcotest.test_case "metrics:false suppresses the run" `Quick
            test_metrics_suppressed_run;
          Alcotest.test_case "histogram bucket totals" `Quick
            test_histogram_totals;
          Alcotest.test_case "pipeline histogram totals" `Quick
            test_pipeline_histogram_totals;
          Alcotest.test_case "registry mechanics" `Quick test_registry_mechanics;
          Alcotest.test_case "prometheus escapes hostile help strings" `Quick
            test_prometheus_hostile_help;
          Alcotest.test_case "with_suppressed nests across an exception"
            `Quick test_suppressed_nesting_exception;
        ] );
      ( "explain",
        [
          Alcotest.test_case "waterfall equals stats at every pruning level"
            `Quick test_explain_matches_stats;
          Alcotest.test_case "one sink accumulates across documents" `Quick
            test_explain_sink_reuse_accumulates;
          Alcotest.test_case "disarmed hooks are inert" `Quick
            test_explain_disarmed_is_inert;
          Alcotest.test_case "event jsonl schema" `Quick
            test_explain_jsonl_schema;
        ] );
      ( "perf",
        [
          Alcotest.test_case "quantile estimation" `Quick test_quantile;
          Alcotest.test_case "bench json schema" `Quick test_bench_json_schema;
          Alcotest.test_case "bench json roundtrip" `Quick
            test_bench_json_roundtrip;
          Alcotest.test_case "bench json rejects bad input" `Quick
            test_bench_json_rejects;
          Alcotest.test_case "regression comparison" `Quick
            test_compare_benches;
        ] );
      ( "shards",
        [
          Alcotest.test_case "4-domain batch merges without losing counts"
            `Quick test_parallel_shard_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans nest and close under injected fault"
            `Quick test_spans_nest_under_fault;
          Alcotest.test_case "drain orders deterministically across domains"
            `Quick test_trace_drain_cross_domain;
        ] );
      ( "schema",
        [
          Alcotest.test_case "metrics jsonl" `Quick test_metrics_jsonl_schema;
          Alcotest.test_case "prometheus text" `Quick test_prometheus_schema;
          Alcotest.test_case "trace jsonl" `Quick test_trace_jsonl_schema;
        ] );
    ]
