(* Observability tests: metrics registry vs. pipeline statistics, shard
   merging across domains, trace span nesting under injected faults, and
   the exported JSON schemas (locked with a deterministic clock). *)

module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Fault = Faerie_util.Fault
module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Single_heap = Core.Single_heap
module Extractor = Core.Extractor
module Parallel = Core.Parallel
module Outcome = Core.Outcome

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let paper_dict =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let paper_doc =
  "an efficient filter for approximate membership checking. venkaee shga \
   kamunshik kabarati, dong xin, surauijt chadhurisigmod."

(* ------------------------------------------------------------------ *)
(* (a) registry counters agree with Types.stats at every pruning level *)
(* ------------------------------------------------------------------ *)

let counter_name_of_level = function
  | Types.No_prune -> "candidates_generated_none"
  | Types.Lazy_count -> "candidates_generated_lazy"
  | Types.Bucket_count -> "candidates_generated_bucket"
  | Types.Binary_window -> "candidates_generated_binary"

let test_counters_match_stats () =
  let problem = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let doc = Problem.tokenize_document problem paper_doc in
  List.iter
    (fun pruning ->
      Metrics.reset ();
      let r = Single_heap.run_budgeted ~pruning problem doc in
      let stats = r.Single_heap.stats in
      let snap = Metrics.snapshot () in
      let level = Types.pruning_name pruning in
      let eq name v = check_int (level ^ ": " ^ name) v (Metrics.counter_value snap name) in
      eq "candidates_generated" stats.Types.candidates;
      eq (counter_name_of_level pruning) stats.Types.candidates;
      eq "entities_seen" stats.Types.entities_seen;
      eq "entities_pruned_lazy" stats.Types.entities_pruned_lazy;
      eq "buckets_pruned" stats.Types.buckets_pruned;
      eq "filter_survivors" stats.Types.survivors;
      (* Every surviving candidate is verified exactly once on the indexed
         path, so the verify-call counter equals the survivor count. *)
      eq "verify_calls" stats.Types.survivors;
      eq "matches_verified" stats.Types.verified)
    Types.all_prunings

let test_metrics_suppressed_run () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  Metrics.reset ();
  let opts = { Extractor.default_opts with Extractor.metrics = false } in
  let report = Extractor.run ~opts ex (`Text paper_doc) in
  check_bool "run succeeded" true (Outcome.is_ok report.Extractor.outcome);
  check_bool "stats still populated" true (report.Extractor.stats.Types.candidates > 0);
  let snap = Metrics.snapshot () in
  check_int "no candidates recorded" 0 (Metrics.counter_value snap "candidates_generated");
  check_int "no docs recorded" 0 (Metrics.counter_value snap "docs_processed");
  (* Suppression is per-run, not sticky. *)
  let report2 = Extractor.run ex (`Text paper_doc) in
  check_bool "second run ok" true (Outcome.is_ok report2.Extractor.outcome);
  let snap2 = Metrics.snapshot () in
  check_int "second run recorded" 1 (Metrics.counter_value snap2 "docs_processed")

(* ------------------------------------------------------------------ *)
(* (b) histogram bucket totals equal observation counts                *)
(* ------------------------------------------------------------------ *)

let test_histogram_totals () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2.; 5. |] "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.; 1.5; 2.; 4.9; 5.; 100.; 1000. ];
  let snap = Metrics.snapshot ~registry:reg () in
  match snap.Metrics.histograms with
  | [ ("h", hs) ] ->
      check_int "count" 8 hs.Metrics.count;
      check_int "cells" 4 (Array.length hs.Metrics.counts);
      check_int "bucket totals = count" hs.Metrics.count
        (Array.fold_left ( + ) 0 hs.Metrics.counts);
      Alcotest.(check (array int)) "per-cell" [| 2; 2; 2; 2 |] hs.Metrics.counts;
      Alcotest.(check (float 1e-9)) "sum" 1114.9 hs.Metrics.sum
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_pipeline_histogram_totals () =
  Metrics.reset ();
  let ex = Extractor.create ~sim:(Sim.Jaccard 0.8) paper_dict in
  let _ = Extractor.run ex (`Text paper_doc) in
  let snap = Metrics.snapshot () in
  check_bool "has histograms" true (snap.Metrics.histograms <> []);
  List.iter
    (fun (name, hs) ->
      check_int
        (name ^ ": bucket totals = count")
        hs.Metrics.count
        (Array.fold_left ( + ) 0 hs.Metrics.counts))
    snap.Metrics.histograms

(* ------------------------------------------------------------------ *)
(* (c) spans nest and close correctly under an injected fault          *)
(* ------------------------------------------------------------------ *)

let with_deterministic_clock f =
  let t = ref 0L in
  Trace.set_clock (Some (fun () -> t := Int64.add !t 10L; !t));
  Trace.enable ();
  ignore (Trace.drain ());
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.set_clock None;
      ignore (Trace.drain ()))
    f

let test_spans_nest_under_fault () =
  with_deterministic_clock @@ fun () ->
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  ignore (Trace.drain ());
  Fault.configure { Fault.seed = 1; rates = [ ("heap_merge", 1.0) ] };
  let report =
    Fun.protect ~finally:Fault.disarm (fun () ->
        Extractor.run ex (`Text paper_doc))
  in
  (match report.Extractor.outcome with
  | Outcome.Failed (Outcome.Injected_fault "heap_merge") -> ()
  | _ -> Alcotest.fail "expected Failed (Injected_fault heap_merge)");
  let spans = Trace.drain () in
  let find name =
    match List.find_opt (fun s -> s.Trace.name = name) spans with
    | Some s -> s
    | None -> Alcotest.fail ("missing span " ^ name)
  in
  let root = find "extract_doc" in
  let tokenize = find "tokenize" in
  let filter = find "filter" in
  (* The fault fires at the heap_merge site before the merge span opens, so
     the filter span is the innermost one crossed by the exception. *)
  check_int "root depth" 0 root.Trace.depth;
  check_int "tokenize depth" 1 tokenize.Trace.depth;
  check_int "filter depth" 1 filter.Trace.depth;
  check_bool "root closed ok (fault contained inside)" true root.Trace.ok;
  check_bool "tokenize ok" true tokenize.Trace.ok;
  check_bool "filter closed by exception" false filter.Trace.ok;
  let inside inner outer =
    inner.Trace.start_ns >= outer.Trace.start_ns
    && Int64.add inner.Trace.start_ns inner.Trace.dur_ns
       <= Int64.add outer.Trace.start_ns outer.Trace.dur_ns
  in
  check_bool "tokenize inside root" true (inside tokenize root);
  check_bool "filter inside root" true (inside filter root);
  check_bool "every span closed (drain empty)" true (Trace.drain () = [])

(* ------------------------------------------------------------------ *)
(* (d) multi-domain shard merge loses no counts                        *)
(* ------------------------------------------------------------------ *)

let test_parallel_shard_merge () =
  let problem = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let docs =
    Array.init 12 (fun i ->
        if i mod 3 = 0 then paper_doc
        else if i mod 3 = 1 then "surauijt chadhuri and venkatesh"
        else "no entities here at all")
  in
  let tracked =
    [
      "docs_processed"; "docs_ok"; "tokenize_calls"; "tokenize_tokens";
      "heap_pops"; "heap_merge_runs"; "candidates_generated"; "verify_calls";
      "filter_survivors"; "matches_verified"; "entities_seen";
    ]
  in
  let totals domains =
    Metrics.reset ();
    let outcomes, summary =
      Parallel.extract_all_outcomes ~domains problem docs
    in
    check_int "all docs processed" 12 (Array.length outcomes);
    check_int "all ok" 12 summary.Outcome.n_ok;
    let snap = Metrics.snapshot () in
    List.map (fun name -> (name, Metrics.counter_value snap name)) tracked
  in
  let sequential = totals 1 in
  let parallel = totals 4 in
  List.iter2
    (fun (name, a) (name', b) ->
      check_string "same counter" name name';
      check_int ("4-domain total matches sequential: " ^ name) a b)
    sequential parallel;
  check_int "docs_processed"
    (List.assoc "docs_processed" parallel)
    (Array.length docs)

(* ------------------------------------------------------------------ *)
(* Exported JSON schemas (locked)                                      *)
(* ------------------------------------------------------------------ *)

let test_metrics_jsonl_schema () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~help:"a counter" "alpha" in
  let g = Metrics.gauge ~registry:reg "beta" in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2. |] "gamma" in
  Metrics.add c 3;
  Metrics.set g 1.5;
  Metrics.observe h 0.5;
  Metrics.observe h 3.;
  check_string "jsonl schema"
    ("{\"type\":\"counter\",\"name\":\"alpha\",\"value\":3}\n"
   ^ "{\"type\":\"gauge\",\"name\":\"beta\",\"value\":1.5}\n"
   ^ "{\"type\":\"histogram\",\"name\":\"gamma\",\"upper\":[1,2],\"counts\":[1,0,1],\"sum\":3.5,\"count\":2}\n"
    )
    (Metrics.to_jsonl ~registry:reg ())

let test_prometheus_schema () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~help:"a counter" "alpha" in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2. |] "gamma" in
  Metrics.add c 3;
  Metrics.observe h 0.5;
  Metrics.observe h 3.;
  check_string "prometheus schema"
    ("# HELP alpha a counter\n# TYPE alpha counter\nalpha 3\n"
   ^ "# TYPE gamma histogram\n"
   ^ "gamma_bucket{le=\"1\"} 1\ngamma_bucket{le=\"2\"} 1\n"
   ^ "gamma_bucket{le=\"+Inf\"} 2\ngamma_sum 3.5\ngamma_count 2\n")
    (Metrics.to_prometheus ~registry:reg ())

let test_trace_jsonl_schema () =
  with_deterministic_clock @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span ~attrs:[ ("k", "v\"w") ] "inner" (fun () -> ()));
  let spans = Trace.drain () in
  let domain = (Domain.self () :> int) in
  check_string "trace jsonl schema"
    (Printf.sprintf
       "{\"name\":\"outer\",\"start_ns\":10,\"dur_ns\":30,\"depth\":0,\"domain\":%d,\"ok\":true,\"attrs\":{}}\n\
        {\"name\":\"inner\",\"start_ns\":20,\"dur_ns\":10,\"depth\":1,\"domain\":%d,\"ok\":true,\"attrs\":{\"k\":\"v\\\"w\"}}\n"
       domain domain)
    (Trace.to_jsonl spans)

(* ------------------------------------------------------------------ *)
(* Registry mechanics                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry_mechanics () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "c" in
  let c' = Metrics.counter ~registry:reg "c" in
  Metrics.incr c;
  Metrics.incr c';
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "same name = same counter" 2 (Metrics.counter_value snap "c");
  (match Metrics.gauge ~registry:reg "c" with
  | _ -> Alcotest.fail "kind mismatch must be rejected"
  | exception Invalid_argument _ -> ());
  (* Late registration after a shard exists grows the shard on write. *)
  let d = Metrics.counter ~registry:reg "late" in
  Metrics.add d 7;
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "late counter" 7 (Metrics.counter_value snap "late");
  Metrics.reset ~registry:reg ();
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "reset zeroes" 0 (Metrics.counter_value snap "c");
  (match Metrics.add c (-1) with
  | () -> Alcotest.fail "negative add must be rejected"
  | exception Invalid_argument _ -> ())

let () =
  Alcotest.run "faerie_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters match stats at every pruning level"
            `Quick test_counters_match_stats;
          Alcotest.test_case "metrics:false suppresses the run" `Quick
            test_metrics_suppressed_run;
          Alcotest.test_case "histogram bucket totals" `Quick
            test_histogram_totals;
          Alcotest.test_case "pipeline histogram totals" `Quick
            test_pipeline_histogram_totals;
          Alcotest.test_case "registry mechanics" `Quick test_registry_mechanics;
        ] );
      ( "shards",
        [
          Alcotest.test_case "4-domain batch merges without losing counts"
            `Quick test_parallel_shard_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans nest and close under injected fault"
            `Quick test_spans_nest_under_fault;
        ] );
      ( "schema",
        [
          Alcotest.test_case "metrics jsonl" `Quick test_metrics_jsonl_schema;
          Alcotest.test_case "prometheus text" `Quick test_prometheus_schema;
          Alcotest.test_case "trace jsonl" `Quick test_trace_jsonl_schema;
        ] );
    ]
