(* Observability tests: metrics registry vs. pipeline statistics, shard
   merging across domains, trace span nesting under injected faults, and
   the exported JSON schemas (locked with a deterministic clock). *)

module Metrics = Faerie_obs.Metrics
module Trace = Faerie_obs.Trace
module Explain = Faerie_obs.Explain
module Perf = Faerie_obs.Perf
module Fault = Faerie_util.Fault
module Sim = Faerie_sim.Sim
module Core = Faerie_core
module Types = Core.Types
module Problem = Core.Problem
module Single_heap = Core.Single_heap
module Extractor = Core.Extractor
module Parallel = Core.Parallel
module Outcome = Core.Outcome

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let paper_dict =
  [ "kaushik ch"; "chakrabarti"; "chaudhuri"; "venkatesh"; "surajit ch" ]

let paper_doc =
  "an efficient filter for approximate membership checking. venkaee shga \
   kamunshik kabarati, dong xin, surauijt chadhurisigmod."

(* ------------------------------------------------------------------ *)
(* (a) registry counters agree with Types.stats at every pruning level *)
(* ------------------------------------------------------------------ *)

let counter_name_of_level = function
  | Types.No_prune -> "candidates_generated_none"
  | Types.Lazy_count -> "candidates_generated_lazy"
  | Types.Bucket_count -> "candidates_generated_bucket"
  | Types.Binary_window -> "candidates_generated_binary"

let test_counters_match_stats () =
  let problem = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let doc = Problem.tokenize_document problem paper_doc in
  List.iter
    (fun pruning ->
      Metrics.reset ();
      let r = Single_heap.run_budgeted ~pruning problem doc in
      let stats = r.Single_heap.stats in
      let snap = Metrics.snapshot () in
      let level = Types.pruning_name pruning in
      let eq name v = check_int (level ^ ": " ^ name) v (Metrics.counter_value snap name) in
      eq "candidates_generated" stats.Types.candidates;
      eq (counter_name_of_level pruning) stats.Types.candidates;
      eq "entities_seen" stats.Types.entities_seen;
      eq "entities_pruned_lazy" stats.Types.entities_pruned_lazy;
      eq "buckets_pruned" stats.Types.buckets_pruned;
      eq "filter_survivors" stats.Types.survivors;
      (* Every surviving candidate is verified exactly once on the indexed
         path, so the verify-call counter equals the survivor count. *)
      eq "verify_calls" stats.Types.survivors;
      eq "matches_verified" stats.Types.verified)
    Types.all_prunings

let test_metrics_suppressed_run () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  Metrics.reset ();
  let opts = { Extractor.default_opts with Extractor.metrics = false } in
  let report = Extractor.run ~opts ex (`Text paper_doc) in
  check_bool "run succeeded" true (Outcome.is_ok report.Extractor.outcome);
  check_bool "stats still populated" true (report.Extractor.stats.Types.candidates > 0);
  let snap = Metrics.snapshot () in
  check_int "no candidates recorded" 0 (Metrics.counter_value snap "candidates_generated");
  check_int "no docs recorded" 0 (Metrics.counter_value snap "docs_processed");
  (* Suppression is per-run, not sticky. *)
  let report2 = Extractor.run ex (`Text paper_doc) in
  check_bool "second run ok" true (Outcome.is_ok report2.Extractor.outcome);
  let snap2 = Metrics.snapshot () in
  check_int "second run recorded" 1 (Metrics.counter_value snap2 "docs_processed")

(* ------------------------------------------------------------------ *)
(* (b) histogram bucket totals equal observation counts                *)
(* ------------------------------------------------------------------ *)

let test_histogram_totals () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2.; 5. |] "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.; 1.5; 2.; 4.9; 5.; 100.; 1000. ];
  let snap = Metrics.snapshot ~registry:reg () in
  match snap.Metrics.histograms with
  | [ ("h", hs) ] ->
      check_int "count" 8 hs.Metrics.count;
      check_int "cells" 4 (Array.length hs.Metrics.counts);
      check_int "bucket totals = count" hs.Metrics.count
        (Array.fold_left ( + ) 0 hs.Metrics.counts);
      Alcotest.(check (array int)) "per-cell" [| 2; 2; 2; 2 |] hs.Metrics.counts;
      Alcotest.(check (float 1e-9)) "sum" 1114.9 hs.Metrics.sum
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_pipeline_histogram_totals () =
  Metrics.reset ();
  let ex = Extractor.create ~sim:(Sim.Jaccard 0.8) paper_dict in
  let _ = Extractor.run ex (`Text paper_doc) in
  let snap = Metrics.snapshot () in
  check_bool "has histograms" true (snap.Metrics.histograms <> []);
  List.iter
    (fun (name, hs) ->
      check_int
        (name ^ ": bucket totals = count")
        hs.Metrics.count
        (Array.fold_left ( + ) 0 hs.Metrics.counts))
    snap.Metrics.histograms

(* ------------------------------------------------------------------ *)
(* (c) spans nest and close correctly under an injected fault          *)
(* ------------------------------------------------------------------ *)

let with_deterministic_clock f =
  let t = ref 0L in
  Trace.set_clock (Some (fun () -> t := Int64.add !t 10L; !t));
  Trace.enable ();
  ignore (Trace.drain ());
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.set_clock None;
      ignore (Trace.drain ()))
    f

let test_spans_nest_under_fault () =
  with_deterministic_clock @@ fun () ->
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  ignore (Trace.drain ());
  Fault.configure { Fault.seed = 1; rates = [ ("heap_merge", 1.0) ] };
  let report =
    Fun.protect ~finally:Fault.disarm (fun () ->
        Extractor.run ex (`Text paper_doc))
  in
  (match report.Extractor.outcome with
  | Outcome.Failed (Outcome.Injected_fault "heap_merge") -> ()
  | _ -> Alcotest.fail "expected Failed (Injected_fault heap_merge)");
  let spans = Trace.drain () in
  let find name =
    match List.find_opt (fun s -> s.Trace.name = name) spans with
    | Some s -> s
    | None -> Alcotest.fail ("missing span " ^ name)
  in
  let root = find "extract_doc" in
  let tokenize = find "tokenize" in
  let filter = find "filter" in
  (* The fault fires at the heap_merge site before the merge span opens, so
     the filter span is the innermost one crossed by the exception. *)
  check_int "root depth" 0 root.Trace.depth;
  check_int "tokenize depth" 1 tokenize.Trace.depth;
  check_int "filter depth" 1 filter.Trace.depth;
  check_bool "root closed ok (fault contained inside)" true root.Trace.ok;
  check_bool "tokenize ok" true tokenize.Trace.ok;
  check_bool "filter closed by exception" false filter.Trace.ok;
  let inside inner outer =
    inner.Trace.start_ns >= outer.Trace.start_ns
    && Int64.add inner.Trace.start_ns inner.Trace.dur_ns
       <= Int64.add outer.Trace.start_ns outer.Trace.dur_ns
  in
  check_bool "tokenize inside root" true (inside tokenize root);
  check_bool "filter inside root" true (inside filter root);
  check_bool "every span closed (drain empty)" true (Trace.drain () = [])

(* ------------------------------------------------------------------ *)
(* (d) multi-domain shard merge loses no counts                        *)
(* ------------------------------------------------------------------ *)

let test_parallel_shard_merge () =
  let problem = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let docs =
    Array.init 12 (fun i ->
        if i mod 3 = 0 then paper_doc
        else if i mod 3 = 1 then "surauijt chadhuri and venkatesh"
        else "no entities here at all")
  in
  let tracked =
    [
      "docs_processed"; "docs_ok"; "tokenize_calls"; "tokenize_tokens";
      "heap_pops"; "heap_merge_runs"; "candidates_generated"; "verify_calls";
      "filter_survivors"; "matches_verified"; "entities_seen";
    ]
  in
  let totals domains =
    Metrics.reset ();
    let outcomes, summary =
      Parallel.extract_all_outcomes ~domains problem docs
    in
    check_int "all docs processed" 12 (Array.length outcomes);
    check_int "all ok" 12 summary.Outcome.n_ok;
    let snap = Metrics.snapshot () in
    List.map (fun name -> (name, Metrics.counter_value snap name)) tracked
  in
  let sequential = totals 1 in
  let parallel = totals 4 in
  List.iter2
    (fun (name, a) (name', b) ->
      check_string "same counter" name name';
      check_int ("4-domain total matches sequential: " ^ name) a b)
    sequential parallel;
  check_int "docs_processed"
    (List.assoc "docs_processed" parallel)
    (Array.length docs)

(* ------------------------------------------------------------------ *)
(* Exported JSON schemas (locked)                                      *)
(* ------------------------------------------------------------------ *)

let test_metrics_jsonl_schema () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~help:"a counter" "alpha" in
  let g = Metrics.gauge ~registry:reg "beta" in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2. |] "gamma" in
  Metrics.add c 3;
  Metrics.set g 1.5;
  Metrics.observe h 0.5;
  Metrics.observe h 3.;
  check_string "jsonl schema"
    ("{\"type\":\"counter\",\"name\":\"alpha\",\"value\":3}\n"
   ^ "{\"type\":\"gauge\",\"name\":\"beta\",\"value\":1.5}\n"
   ^ "{\"type\":\"histogram\",\"name\":\"gamma\",\"upper\":[1,2],\"counts\":[1,0,1],\"sum\":3.5,\"count\":2}\n"
    )
    (Metrics.to_jsonl ~registry:reg ())

let test_prometheus_schema () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~help:"a counter" "alpha" in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2. |] "gamma" in
  Metrics.add c 3;
  Metrics.observe h 0.5;
  Metrics.observe h 3.;
  check_string "prometheus schema"
    ("# HELP alpha a counter\n# TYPE alpha counter\nalpha 3\n"
   ^ "# TYPE gamma histogram\n"
   ^ "gamma_bucket{le=\"1\"} 1\ngamma_bucket{le=\"2\"} 1\n"
   ^ "gamma_bucket{le=\"+Inf\"} 2\ngamma_sum 3.5\ngamma_count 2\n")
    (Metrics.to_prometheus ~registry:reg ())

let test_trace_jsonl_schema () =
  with_deterministic_clock @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span ~attrs:[ ("k", "v\"w") ] "inner" (fun () -> ()));
  let spans = Trace.drain () in
  let domain = (Domain.self () :> int) in
  check_string "trace jsonl schema"
    (Printf.sprintf
       "{\"name\":\"outer\",\"start_ns\":10,\"dur_ns\":30,\"depth\":0,\"domain\":%d,\"trace\":0,\"ok\":true,\"attrs\":{}}\n\
        {\"name\":\"inner\",\"start_ns\":20,\"dur_ns\":10,\"depth\":1,\"domain\":%d,\"trace\":0,\"ok\":true,\"attrs\":{\"k\":\"v\\\"w\"}}\n"
       domain domain)
    (Trace.to_jsonl spans)

(* ------------------------------------------------------------------ *)
(* (e) Explain waterfall agrees with Types.stats at every level        *)
(* ------------------------------------------------------------------ *)

let test_explain_matches_stats () =
  List.iter
    (fun pruning ->
      let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
      let sink = Explain.create () in
      let opts =
        { Extractor.default_opts with Extractor.pruning; explain = Some sink }
      in
      let report = Extractor.run ~opts ex (`Text paper_doc) in
      check_bool "run succeeded" true (Outcome.is_ok report.Extractor.outcome);
      let stats = report.Extractor.stats in
      let s = Explain.summarize sink in
      let level = Types.pruning_name pruning in
      let eq name a b = check_int (level ^ ": " ^ name) a b in
      eq "docs" 1 s.Explain.docs;
      eq "entities_seen" stats.Types.entities_seen s.Explain.entities_seen;
      eq "pruned_lazy" stats.Types.entities_pruned_lazy s.Explain.pruned_lazy;
      eq "buckets_pruned" stats.Types.buckets_pruned s.Explain.buckets_pruned;
      eq "candidates" stats.Types.candidates s.Explain.candidates;
      eq "survivors" stats.Types.survivors s.Explain.survivors;
      eq "verify_calls" stats.Types.survivors s.Explain.verify_calls;
      eq "matched" stats.Types.verified s.Explain.matched;
      (* Dedup can only shrink the surviving candidate set. *)
      check_bool (level ^ ": dedup shrinks") true
        (s.Explain.candidates_survived >= s.Explain.survivors);
      (* The log itself is well-formed: opens with the document marker. *)
      (match Explain.events sink with
      | Explain.Doc { doc_id = 0 } :: _ -> ()
      | _ -> Alcotest.fail (level ^ ": first event must be Doc"));
      check_bool (level ^ ": events recorded") true (Explain.length sink > 1))
    Types.all_prunings

let test_explain_sink_reuse_accumulates () =
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let sink = Explain.create () in
  let opts = { Extractor.default_opts with Extractor.explain = Some sink } in
  let r1 = Extractor.run ~opts ex (`Text paper_doc) in
  let r2 = Extractor.run ~opts ex (`Text paper_doc) in
  check_bool "both ok" true
    (Outcome.is_ok r1.Extractor.outcome && Outcome.is_ok r2.Extractor.outcome);
  let s = Explain.summarize sink in
  check_int "two docs audited" 2 s.Explain.docs;
  check_int "stats sum across documents"
    (r1.Extractor.stats.Types.candidates + r2.Extractor.stats.Types.candidates)
    s.Explain.candidates;
  Explain.clear sink;
  check_int "clear empties the log" 0 (Explain.length sink)

let test_explain_disarmed_is_inert () =
  check_bool "disarmed by default" false (Explain.armed ());
  check_bool "no current sink" true (Explain.current () = None);
  (* Hook entry points are no-ops without a sink. *)
  Explain.record (Explain.Filter_done { survivors = 1 });
  Explain.skip Explain.Span_pruned;
  let sink = Explain.create () in
  (try
     Explain.with_sink sink (fun () ->
         check_bool "armed inside" true (Explain.armed ());
         check_bool "current inside" true (Explain.current () = Some sink);
         failwith "boom")
   with Failure _ -> ());
  check_bool "disarmed after exception" false (Explain.armed ());
  check_bool "no sink after exception" true (Explain.current () = None);
  check_int "stray records went nowhere" 0 (Explain.length sink)

let test_explain_jsonl_schema () =
  let sink = Explain.create () in
  List.iter
    (Explain.emit sink)
    [
      Explain.Doc { doc_id = 0 };
      Explain.Entity { entity = 3; e_len = 2; n_positions = 5 };
      Explain.Pruned
        { entity = 3; reason = Explain.Lazy_bound { tl = 2; count = 1 } };
      Explain.Pruned { entity = 4; reason = Explain.Bucket_pruned };
      Explain.Window { entity = 3; first = 0; last = 4 };
      Explain.Window_skip { entity = 3; reason = Explain.Span_pruned };
      Explain.Window_skip { entity = 3; reason = Explain.Shift_jumped 5 };
      Explain.Candidate
        { entity = 3; start = 7; len = 2; count = 2; t = 2; survived = true };
      Explain.Filter_done { survivors = 12 };
      Explain.Verifier { choice = "myers" };
      Explain.Verify { entity = 3; start = 7; len = 2; matched = true };
      Explain.Selection { total = 9; kept = 4 };
    ];
  check_string "explain jsonl schema"
    "{\"ev\":\"doc\",\"doc_id\":0}\n\
     {\"ev\":\"entity\",\"entity\":3,\"e_len\":2,\"positions\":5}\n\
     {\"ev\":\"pruned\",\"entity\":3,\"reason\":\"lazy\",\"tl\":2,\"count\":1}\n\
     {\"ev\":\"pruned\",\"entity\":4,\"reason\":\"bucket\"}\n\
     {\"ev\":\"window\",\"entity\":3,\"first\":0,\"last\":4}\n\
     {\"ev\":\"window_skip\",\"entity\":3,\"reason\":\"span\"}\n\
     {\"ev\":\"window_skip\",\"entity\":3,\"reason\":\"shift\",\"jump\":5}\n\
     {\"ev\":\"candidate\",\"entity\":3,\"start\":7,\"len\":2,\"count\":2,\"t\":2,\"survived\":true}\n\
     {\"ev\":\"filter_done\",\"survivors\":12}\n\
     {\"ev\":\"verifier\",\"choice\":\"myers\"}\n\
     {\"ev\":\"verify\",\"entity\":3,\"start\":7,\"len\":2,\"matched\":true}\n\
     {\"ev\":\"selection\",\"total\":9,\"kept\":4}\n"
    (Explain.to_jsonl sink)

(* ------------------------------------------------------------------ *)
(* (f) Perf: quantiles, bench snapshot codec, regression comparison    *)
(* ------------------------------------------------------------------ *)

let hist ~upper ~counts =
  {
    Metrics.upper;
    counts;
    sum = 0.;
    count = Array.fold_left ( + ) 0 counts;
    exemplars = [||];
  }

let check_float = Alcotest.(check (float 1e-9))

let test_quantile () =
  let h = hist ~upper:[| 10.; 20.; 30. |] ~counts:[| 1; 1; 1; 0 |] in
  check_float "median interpolates" 15. (Perf.quantile h 0.5);
  check_float "q=0 is the distribution floor" 0. (Perf.quantile h 0.0);
  check_float "q=1 hits last bound" 30. (Perf.quantile h 1.0);
  let skewed = hist ~upper:[| 10.; 20.; 30. |] ~counts:[| 10; 0; 0; 0 |] in
  check_float "all mass in first bucket" 5. (Perf.quantile skewed 0.5);
  let overflow = hist ~upper:[| 10.; 20.; 30. |] ~counts:[| 0; 0; 0; 2 |] in
  check_float "overflow reports last bound" 30. (Perf.quantile overflow 0.5);
  check_float "overflow at q=1 still last bound" 30. (Perf.quantile overflow 1.0);
  check_float "overflow at q=0 still last bound" 30. (Perf.quantile overflow 0.0);
  let empty = hist ~upper:[| 10. |] ~counts:[| 0; 0 |] in
  check_bool "empty is nan" true (Float.is_nan (Perf.quantile empty 0.5));
  check_bool "empty at q=0 is nan" true (Float.is_nan (Perf.quantile empty 0.0));
  check_bool "empty at q=1 is nan" true (Float.is_nan (Perf.quantile empty 1.0));
  (match Perf.quantile h 1.5 with
  | _ -> Alcotest.fail "q out of range must be rejected"
  | exception Invalid_argument _ -> ());
  match Perf.quantile h (-0.1) with
  | _ -> Alcotest.fail "negative q must be rejected"
  | exception Invalid_argument _ -> ()

let sample_bench =
  {
    Perf.schema = Perf.schema_version;
    git_rev = "abc1234";
    scale = 1.0;
    ocaml = "5.1.1";
    exhibits =
      [
        {
          Perf.ex_name = "smoke";
          wall_s = 0.5;
          tokens = 100;
          tokens_per_s = 200.;
          candidates = 10;
          pruned = 4;
          verify_calls = 8;
          matches = 3;
          p50_ns = 1500.;
          p90_ns = 2000.;
          p99_ns = nan;
          a50_w = 900.;
          a90_w = 9000.;
          a99_w = nan;
          gc =
            Some
              {
                Perf.minor_words = 120000.;
                promoted_words = 8000.;
                major_collections = 2;
                top_heap_bytes = 1048576;
                words_per_token = 1200.;
              };
        };
      ];
  }

let test_bench_json_schema () =
  check_string "bench json schema"
    "{\"schema\":\"faerie-bench-v2\",\"git_rev\":\"abc1234\",\"scale\":1,\"ocaml\":\"5.1.1\",\"exhibits\":[\n\
     {\"name\":\"smoke\",\"wall_s\":0.5,\"tokens\":100,\"tokens_per_s\":200,\"candidates\":10,\"pruned\":4,\"verify_calls\":8,\"matches\":3,\"doc_wall_ns\":{\"p50\":1500,\"p90\":2000,\"p99\":null},\"alloc_per_doc\":{\"p50\":900,\"p90\":9000,\"p99\":null},\"gc\":{\"minor_words\":120000,\"promoted_words\":8000,\"major_collections\":2,\"top_heap_bytes\":1048576,\"words_per_token\":1200}}\n\
     ]}\n"
    (Perf.bench_to_json sample_bench);
  (* An unprofiled exhibit serializes an explicit null gc block. *)
  let no_gc =
    {
      sample_bench with
      Perf.exhibits =
        List.map
          (fun e -> { e with Perf.gc = None; a50_w = nan; a90_w = nan })
          sample_bench.Perf.exhibits;
    }
  in
  let js = Perf.bench_to_json no_gc in
  check_bool "gc null when unprofiled" true
    (has_substring js "\"gc\":null");
  check_bool "alloc percentiles null when unprofiled" true
    (has_substring js "\"alloc_per_doc\":{\"p50\":null,\"p90\":null,\"p99\":null}")

let test_bench_json_roundtrip () =
  match Perf.bench_of_json (Perf.bench_to_json sample_bench) with
  | Error e -> Alcotest.fail ("roundtrip failed: " ^ e)
  | Ok b -> (
      check_string "schema" sample_bench.Perf.schema b.Perf.schema;
      check_string "git_rev" "abc1234" b.Perf.git_rev;
      check_float "scale" 1.0 b.Perf.scale;
      check_string "ocaml" "5.1.1" b.Perf.ocaml;
      match b.Perf.exhibits with
      | [ e ] ->
          let o = List.hd sample_bench.Perf.exhibits in
          check_string "name" o.Perf.ex_name e.Perf.ex_name;
          check_float "wall_s" o.Perf.wall_s e.Perf.wall_s;
          check_int "tokens" o.Perf.tokens e.Perf.tokens;
          check_float "tokens_per_s" o.Perf.tokens_per_s e.Perf.tokens_per_s;
          check_int "candidates" o.Perf.candidates e.Perf.candidates;
          check_int "pruned" o.Perf.pruned e.Perf.pruned;
          check_int "verify_calls" o.Perf.verify_calls e.Perf.verify_calls;
          check_int "matches" o.Perf.matches e.Perf.matches;
          check_float "p50" o.Perf.p50_ns e.Perf.p50_ns;
          check_float "p90" o.Perf.p90_ns e.Perf.p90_ns;
          check_bool "null p99 roundtrips to nan" true
            (Float.is_nan e.Perf.p99_ns);
          check_float "a50" o.Perf.a50_w e.Perf.a50_w;
          check_float "a90" o.Perf.a90_w e.Perf.a90_w;
          check_bool "null a99 roundtrips to nan" true
            (Float.is_nan e.Perf.a99_w);
          (match (o.Perf.gc, e.Perf.gc) with
          | Some og, Some eg ->
              check_float "gc minor" og.Perf.minor_words eg.Perf.minor_words;
              check_float "gc promoted" og.Perf.promoted_words
                eg.Perf.promoted_words;
              check_int "gc major" og.Perf.major_collections
                eg.Perf.major_collections;
              check_int "gc top heap" og.Perf.top_heap_bytes
                eg.Perf.top_heap_bytes;
              check_float "gc words/token" og.Perf.words_per_token
                eg.Perf.words_per_token
          | _ -> Alcotest.fail "gc block must roundtrip")
      | l -> Alcotest.failf "expected 1 exhibit, got %d" (List.length l))

(* A v1 snapshot (no alloc_per_doc, no gc) must still parse: the gc
   fields decay to absent rather than failing the whole file. *)
let test_bench_json_v1_compat () =
  let v1 =
    "{\"schema\":\"faerie-bench-v1\",\"git_rev\":\"abc1234\",\"scale\":1,\"ocaml\":\"5.1.1\",\"exhibits\":[\n\
     {\"name\":\"smoke\",\"wall_s\":0.5,\"tokens\":100,\"tokens_per_s\":200,\"candidates\":10,\"pruned\":4,\"verify_calls\":8,\"matches\":3,\"doc_wall_ns\":{\"p50\":1500,\"p90\":2000,\"p99\":null}}\n\
     ]}\n"
  in
  match Perf.bench_of_json v1 with
  | Error e -> Alcotest.fail ("v1 snapshot must parse: " ^ e)
  | Ok b -> (
      check_string "v1 schema kept" "faerie-bench-v1" b.Perf.schema;
      match b.Perf.exhibits with
      | [ e ] ->
          check_float "v1 wall_s" 0.5 e.Perf.wall_s;
          check_float "v1 p50" 1500. e.Perf.p50_ns;
          check_bool "v1 a50 is nan" true (Float.is_nan e.Perf.a50_w);
          check_bool "v1 gc absent" true (e.Perf.gc = None)
      | l -> Alcotest.failf "expected 1 exhibit, got %d" (List.length l))

let test_bench_json_rejects () =
  (match Perf.bench_of_json "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse");
  (match
     Perf.bench_of_json "{\"schema\":\"faerie-bench-v0\",\"exhibits\":[]}"
   with
  | Error e ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      check_bool "schema version named" true (contains e "faerie-bench-v0")
  | Ok _ -> Alcotest.fail "wrong schema version must be rejected");
  match Perf.bench_of_json "{\"schema\":\"faerie-bench-v1\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing exhibits must be rejected"

let test_compare_benches () =
  let with_wall w =
    {
      sample_bench with
      Perf.exhibits =
        List.map
          (fun e -> { e with Perf.wall_s = w })
          sample_bench.Perf.exhibits;
    }
  in
  (* Identical snapshot: pass, ratio 1. *)
  let c =
    Perf.compare_benches ~baseline:sample_bench ~current:sample_bench ()
  in
  check_bool "identical passes" false c.Perf.any_regressed;
  (match c.Perf.verdicts with
  | [ v ] ->
      check_float "ratio 1" 1.0 v.Perf.ratio;
      check_bool "not regressed" false v.Perf.regressed
  | _ -> Alcotest.fail "expected one verdict");
  (* Synthetic 2x slowdown: flagged at the default 1.5 ratio. *)
  let c =
    Perf.compare_benches ~baseline:sample_bench ~current:(with_wall 1.0) ()
  in
  check_bool "2x slowdown regresses" true c.Perf.any_regressed;
  (match c.Perf.verdicts with
  | [ v ] ->
      check_float "ratio 2" 2.0 v.Perf.ratio;
      check_bool "flagged" true v.Perf.regressed
  | _ -> Alcotest.fail "expected one verdict");
  (* A generous gate tolerates the same slowdown. *)
  let c =
    Perf.compare_benches ~max_ratio:3.0 ~baseline:sample_bench
      ~current:(with_wall 1.0) ()
  in
  check_bool "max-ratio 3 tolerates 2x" false c.Perf.any_regressed;
  (* A baseline exhibit missing from current is a regression. *)
  let c =
    Perf.compare_benches ~baseline:sample_bench
      ~current:{ sample_bench with Perf.exhibits = [] }
      ()
  in
  check_bool "missing exhibit regresses" true c.Perf.any_regressed;
  Alcotest.(check (list string)) "missing named" [ "smoke" ] c.Perf.missing;
  (* Extra exhibits in current are not regressions. *)
  let c =
    Perf.compare_benches
      ~baseline:{ sample_bench with Perf.exhibits = [] }
      ~current:sample_bench ()
  in
  check_bool "new exhibit ignored" false c.Perf.any_regressed;
  check_int "no verdicts" 0 (List.length c.Perf.verdicts)

let test_compare_alloc_gate () =
  let with_minor mw =
    {
      sample_bench with
      Perf.exhibits =
        List.map
          (fun e ->
            {
              e with
              Perf.gc =
                Option.map
                  (fun g -> { g with Perf.minor_words = mw })
                  e.Perf.gc;
            })
          sample_bench.Perf.exhibits;
    }
  in
  let strip_gc b =
    {
      b with
      Perf.exhibits =
        List.map (fun e -> { e with Perf.gc = None }) b.Perf.exhibits;
    }
  in
  (* Same wall time, double the allocation: invisible without the gate,
     flagged with it. *)
  let doubled = with_minor 240000. in
  let c = Perf.compare_benches ~baseline:sample_bench ~current:doubled () in
  check_bool "no gate, no alloc regression" false c.Perf.any_regressed;
  let c =
    Perf.compare_benches ~max_alloc_ratio:1.5 ~baseline:sample_bench
      ~current:doubled ()
  in
  check_bool "alloc gate fires" true c.Perf.any_regressed;
  (match c.Perf.verdicts with
  | [ v ] ->
      check_bool "wall not regressed" false v.Perf.regressed;
      check_bool "alloc regressed" true v.Perf.alloc_regressed;
      (match v.Perf.alloc_ratio with
      | Some r -> check_float "alloc ratio 2" 2.0 r
      | None -> Alcotest.fail "alloc ratio expected")
  | _ -> Alcotest.fail "expected one verdict");
  let c =
    Perf.compare_benches ~max_alloc_ratio:3.0 ~baseline:sample_bench
      ~current:doubled ()
  in
  check_bool "generous alloc gate tolerates 2x" false c.Perf.any_regressed;
  (* A v1/no-gc baseline has nothing to compare against: exempt. *)
  let c =
    Perf.compare_benches ~max_alloc_ratio:1.5
      ~baseline:(strip_gc sample_bench) ~current:doubled ()
  in
  check_bool "no-gc baseline exempt" false c.Perf.any_regressed;
  (* The baseline has gc data but the current doesn't: profiling went
     dark, which the gate must refuse to wave through. *)
  let c =
    Perf.compare_benches ~max_alloc_ratio:1.5 ~baseline:sample_bench
      ~current:(strip_gc sample_bench) ()
  in
  check_bool "gc disappearing regresses" true c.Perf.any_regressed;
  (match c.Perf.verdicts with
  | [ v ] -> check_bool "ratio pegged" true (v.Perf.alloc_ratio = Some infinity)
  | _ -> Alcotest.fail "expected one verdict");
  let rendered = Perf.render_comparison ~max_ratio:1.5 ~max_alloc_ratio:1.5 c in
  check_bool "footer names both gates" true
    (has_substring rendered "max-alloc-ratio 1.50")

(* ------------------------------------------------------------------ *)
(* (f') Prof: GC telemetry and flame folding                           *)
(* ------------------------------------------------------------------ *)

module Prof = Faerie_obs.Prof

let test_prof_disabled_zero_captures () =
  check_bool "prof off by default" false (Prof.enabled ());
  let before = Prof.captures () in
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let report = Extractor.run ex (`Text paper_doc) in
  check_bool "run ok" true (Outcome.is_ok report.Extractor.outcome);
  check_int "zero Gc.quick_stat calls while disabled" before (Prof.captures ())

let with_prof f =
  Prof.enable ();
  Fun.protect ~finally:Prof.disable f

let test_prof_enabled_populates_metrics () =
  with_prof @@ fun () ->
  Metrics.reset ();
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let before = Prof.captures () in
  let report = Extractor.run ex (`Text paper_doc) in
  check_bool "run ok" true (Outcome.is_ok report.Extractor.outcome);
  check_bool "captures taken" true (Prof.captures () > before);
  let snap = Metrics.snapshot () in
  check_bool "minor words counted" true
    (Metrics.counter_value snap "gc_minor_words" > 0);
  check_bool "tokenize stage counted" true
    (Metrics.counter_value snap "gc_minor_words_tokenize" > 0);
  check_bool "heap watermark recorded" true
    (Metrics.gauge_value snap "gc_top_heap_bytes" > 0.);
  match List.assoc_opt "doc_alloc_words" snap.Metrics.histograms with
  | Some h ->
      check_int "one doc observed" 1 h.Metrics.count;
      check_bool "allocation observed" true (h.Metrics.sum > 0.)
  | None -> Alcotest.fail "doc_alloc_words histogram missing"

(* The per-doc allocation histogram must aggregate deterministically
   across worker domains: 12 documents are 12 observations whether one
   domain or four processed them, and the totals/watermark survive the
   shard merge. *)
let test_prof_parallel_aggregation () =
  with_prof @@ fun () ->
  let problem = Problem.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let docs =
    Array.init 12 (fun i ->
        if i mod 3 = 0 then paper_doc
        else if i mod 3 = 1 then "surauijt chadhuri and venkatesh"
        else "no entities here at all")
  in
  let observe domains =
    Metrics.reset ();
    let outcomes, _ = Parallel.extract_all_outcomes ~domains problem docs in
    check_int "all docs processed" 12 (Array.length outcomes);
    let snap = Metrics.snapshot () in
    let count =
      match List.assoc_opt "doc_alloc_words" snap.Metrics.histograms with
      | Some h -> h.Metrics.count
      | None -> 0
    in
    check_bool
      (Printf.sprintf "minor words counted (%d domains)" domains)
      true
      (Metrics.counter_value snap "gc_minor_words" > 0);
    check_bool
      (Printf.sprintf "watermark positive (%d domains)" domains)
      true
      (Metrics.gauge_value snap "gc_top_heap_bytes" > 0.);
    count
  in
  check_int "sequential: one observation per doc" 12 (observe 1);
  check_int "4 domains: one observation per doc" 12 (observe 4)

let test_gauge_max_merge () =
  let reg = Metrics.create () in
  let g = Metrics.gauge ~registry:reg ~agg:`Max "peak" in
  Metrics.set_max g 10.;
  Metrics.set_max g 4.;
  Domain.join (Domain.spawn (fun () -> Metrics.set_max g 25.));
  Domain.join (Domain.spawn (fun () -> Metrics.set_max g 7.));
  let snap = Metrics.snapshot ~registry:reg () in
  check_float "max across domains" 25. (Metrics.gauge_value snap "peak");
  (* Re-registration must agree on the merge mode. *)
  (match Metrics.gauge ~registry:reg "peak" with
  | _ -> Alcotest.fail "agg mismatch must be rejected"
  | exception Invalid_argument _ -> ());
  (* Sum gauges still sum across domains. *)
  let s = Metrics.gauge ~registry:reg "total" in
  Metrics.add_gauge s 1.;
  Domain.join (Domain.spawn (fun () -> Metrics.add_gauge s 2.));
  let snap = Metrics.snapshot ~registry:reg () in
  check_float "sum across domains" 3. (Metrics.gauge_value snap "total")

(* Locked folded-stack schema: with the deterministic clock the whole
   profile is fully determined, including self-time subtraction of the
   nested spans. *)
let test_flame_folded_locked () =
  with_deterministic_clock @@ fun () ->
  Trace.with_span "extract_doc" (fun () ->
      Trace.with_span "tokenize" (fun () -> ());
      Trace.with_span "filter" (fun () ->
          Trace.with_span "heap_merge" (fun () -> ())));
  let spans = Trace.drain () in
  let frames = Prof.flame_of_spans spans in
  check_string "folded schema"
    "extract_doc 30\n\
     extract_doc;filter 20\n\
     extract_doc;filter;heap_merge 10\n\
     extract_doc;tokenize 10\n"
    (Prof.to_folded frames);
  (* Every span contributed one call to its frame. *)
  List.iter (fun f -> check_int "one call per frame" 1 f.Prof.calls) frames;
  (* render_top ranks by self time: the root's 30ns of self time wins. *)
  let top = Prof.render_top ~top:2 frames in
  check_bool "top table has the root" true (has_substring top "extract_doc");
  check_bool "top table is capped" false (has_substring top "tokenize")

let test_flame_merges_across_domains () =
  with_deterministic_clock @@ fun () ->
  let work () = Trace.with_span "outer" (fun () -> ()) in
  work ();
  Domain.join (Domain.spawn work);
  let frames = Prof.flame_of_spans (Trace.drain ()) in
  match frames with
  | [ f ] ->
      Alcotest.(check (list string)) "one merged stack" [ "outer" ] f.Prof.stack;
      check_int "both calls counted" 2 f.Prof.calls;
      check_string "self times summed" "outer 20\n" (Prof.to_folded frames)
  | l -> Alcotest.failf "expected 1 frame, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* (g) Prometheus escaping, trace drain ordering, suppression nesting  *)
(* ------------------------------------------------------------------ *)

let test_prometheus_hostile_help () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg ~help:"line1\nline2\\end" "hostile" in
  Metrics.add c 2;
  check_string "help newline and backslash escaped"
    "# HELP hostile line1\\nline2\\\\end\n# TYPE hostile counter\nhostile 2\n"
    (Metrics.to_prometheus ~registry:reg ())

let test_trace_drain_cross_domain () =
  with_deterministic_clock @@ fun () ->
  Trace.with_span "alpha" (fun () -> ());
  Domain.join
    (Domain.spawn (fun () -> Trace.with_span "beta" (fun () -> ())));
  Domain.join
    (Domain.spawn (fun () -> Trace.with_span "gamma" (fun () -> ())));
  Trace.with_span "delta" (fun () -> ());
  let spans = Trace.drain () in
  Alcotest.(check (list string))
    "time-ordered across domains"
    [ "alpha"; "beta"; "gamma"; "delta" ]
    (List.map (fun s -> s.Trace.name) spans);
  (* The injected clock ticks 10ns per read; each span reads it twice, so
     start times are fully determined. *)
  Alcotest.(check (list int))
    "deterministic start times" [ 10; 30; 50; 70 ]
    (List.map (fun s -> Int64.to_int s.Trace.start_ns) spans);
  let dom i = (List.nth spans i).Trace.domain in
  check_bool "beta recorded on its own domain" true (dom 1 <> dom 0);
  check_bool "gamma on a third buffer" true (dom 2 <> dom 0);
  check_bool "drain cleared every buffer" true (Trace.drain () = [])

let test_suppressed_nesting_exception () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "c" in
  Metrics.with_suppressed ~registry:reg (fun () ->
      Metrics.incr c;
      (try
         Metrics.with_suppressed ~registry:reg (fun () ->
             Metrics.incr c;
             failwith "boom")
       with Failure _ -> ());
      (* The inner exception must not tear down the outer suppression. *)
      Metrics.incr c);
  Metrics.incr c;
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "only the unsuppressed write lands" 1
    (Metrics.counter_value snap "c")

(* ------------------------------------------------------------------ *)
(* Registry mechanics                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry_mechanics () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "c" in
  let c' = Metrics.counter ~registry:reg "c" in
  Metrics.incr c;
  Metrics.incr c';
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "same name = same counter" 2 (Metrics.counter_value snap "c");
  (match Metrics.gauge ~registry:reg "c" with
  | _ -> Alcotest.fail "kind mismatch must be rejected"
  | exception Invalid_argument _ -> ());
  (* Late registration after a shard exists grows the shard on write. *)
  let d = Metrics.counter ~registry:reg "late" in
  Metrics.add d 7;
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "late counter" 7 (Metrics.counter_value snap "late");
  Metrics.reset ~registry:reg ();
  let snap = Metrics.snapshot ~registry:reg () in
  check_int "reset zeroes" 0 (Metrics.counter_value snap "c");
  (match Metrics.add c (-1) with
  | () -> Alcotest.fail "negative add must be rejected"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Labeled gauge families in the Prometheus export                     *)
(* ------------------------------------------------------------------ *)

(* An indexed_gauge family registered with ~label renders as one family
   with one labeled sample per member (shard_up{shard="3"}), header
   emitted once — not as name-suffixed series. JSONL identity stays on
   the composed name. *)
let test_prometheus_labeled_family () =
  let reg = Metrics.create () in
  let up0 =
    Metrics.indexed_gauge ~registry:reg ~help:"shard liveness" ~agg:`Max
      ~label:"shard" "shard_up" 0
  in
  let up3 =
    Metrics.indexed_gauge ~registry:reg ~help:"shard liveness" ~agg:`Max
      ~label:"shard" "shard_up" 3
  in
  Metrics.set up0 1.;
  Metrics.set up3 0.;
  check_string "labeled family renders once with per-member samples"
    ("# HELP shard_up shard liveness\n# TYPE shard_up gauge\n"
   ^ "shard_up{shard=\"0\"} 1\nshard_up{shard=\"3\"} 0\n")
    (Metrics.to_prometheus ~registry:reg ());
  check_string "jsonl keeps the composed member names"
    ("{\"type\":\"gauge\",\"name\":\"shard_up_0\",\"value\":1}\n"
   ^ "{\"type\":\"gauge\",\"name\":\"shard_up_3\",\"value\":0}\n")
    (Metrics.to_jsonl ~registry:reg ())

(* Label values are quoted in the exposition format, so backslash, double
   quote and newline must all be escaped (HELP only escapes two of the
   three). Hand-built snapshot: real indexed_gauge labels are integer
   strings, but render_prometheus must stay safe for any shipped
   snapshot. *)
let test_prometheus_label_escaping () =
  let snap =
    {
      Metrics.counters = [];
      gauges =
        [
          ( "family_x",
            {
              Metrics.value = 2.;
              agg = `Max;
              label = Some ("family", "key", "a\\b\"c\nd");
            } );
        ];
      histograms = [];
    }
  in
  check_string "label value escapes backslash, quote and newline"
    "# TYPE family gauge\nfamily{key=\"a\\\\b\\\"c\\nd\"} 2\n"
    (Metrics.render_prometheus ~registry:(Metrics.create ()) snap)

(* ------------------------------------------------------------------ *)
(* merge_snapshots is order-invariant (qcheck)                         *)
(* ------------------------------------------------------------------ *)

(* Snapshot generator for the merge laws. Values are small integers so
   float addition is exact (structural comparison is meaningful), and the
   per-name agg / bucket layout are functions of the name — mixed modes
   under one name are a registry-kind violation, which merge resolves
   first-seen and is deliberately outside the invariance claim. *)
let gen_merge_snapshot =
  let open QCheck.Gen in
  let names = [ "alpha"; "beta"; "gamma"; "delta"; "eps" ] in
  let pick_subset =
    List.fold_left
      (fun acc n -> map2 (fun keep l -> if keep then n :: l else l) bool acc)
      (return []) names
  in
  let agg_of n = if String.length n mod 2 = 0 then `Sum else `Max in
  let upper_of n =
    if String.length n mod 2 = 0 then [| 1.; 10. |] else [| 5. |]
  in
  let counters = pick_subset >>= fun ns ->
    flatten_l
      (List.map (fun n -> map (fun v -> (n, v)) (int_bound 1000)) ns)
  in
  let gauges = pick_subset >>= fun ns ->
    flatten_l
      (List.map
         (fun n ->
           map
             (fun v ->
               ( n,
                 {
                   Metrics.value = float_of_int v;
                   agg = agg_of n;
                   label = None;
                 } ))
             (int_bound 100))
         ns)
  in
  let histograms = pick_subset >>= fun ns ->
    flatten_l
      (List.map
         (fun n ->
           let upper = upper_of n in
           let nb = Array.length upper + 1 in
           let exemplars =
             (* [(0, 0.)] is the "no exemplar" sentinel; a non-zero value
                under trace 0 would break merge commutativity, so never
                generate one. *)
             let slot =
               bool >>= fun live ->
               if live then
                 map2
                   (fun t v -> (1 + t, float_of_int v))
                   (int_bound 1000) (int_bound 900)
               else return (0, 0.)
             in
             bool >>= fun any ->
             if any then map Array.of_list (list_repeat nb slot)
             else return [||]
           in
           map2
             (fun counts exemplars ->
               let counts = Array.of_list counts in
               ( n,
                 {
                   Metrics.upper;
                   counts;
                   sum = float_of_int (Array.fold_left ( + ) 0 counts);
                   count = Array.fold_left ( + ) 0 counts;
                   exemplars;
                 } ))
             (list_repeat nb (int_bound 50))
             exemplars)
         ns)
  in
  map3
    (fun counters gauges histograms ->
      { Metrics.counters; gauges; histograms })
    counters gauges histograms

let gen_merge_snapshot_arb =
  QCheck.make ~print:Metrics.render_jsonl gen_merge_snapshot

let arb_merge_snapshots =
  QCheck.make
    ~print:(fun snaps ->
      String.concat "---\n" (List.map Metrics.render_jsonl snaps))
    QCheck.Gen.(list_size (int_range 0 5) gen_merge_snapshot)

let merge_permutation_invariant =
  QCheck.Test.make ~count:300 ~name:"merge invariant under permutation"
    arb_merge_snapshots (fun snaps ->
      let reference = Metrics.merge_snapshots snaps in
      (* A deterministic non-trivial permutation: reverse, and rotate. *)
      let rotated = match snaps with [] -> [] | x :: tl -> tl @ [ x ] in
      Metrics.merge_snapshots (List.rev snaps) = reference
      && Metrics.merge_snapshots rotated = reference)

let merge_associative =
  QCheck.Test.make ~count:300 ~name:"merge invariant under re-association"
    (QCheck.triple gen_merge_snapshot_arb gen_merge_snapshot_arb
       gen_merge_snapshot_arb) (fun (a, b, c) ->
      let flat = Metrics.merge_snapshots [ a; b; c ] in
      Metrics.merge_snapshots [ Metrics.merge_snapshots [ a; b ]; c ] = flat
      && Metrics.merge_snapshots [ a; Metrics.merge_snapshots [ b; c ] ] = flat)

let merge_identity =
  QCheck.Test.make ~count:100 ~name:"merging one snapshot only sorts it"
    gen_merge_snapshot_arb (fun s ->
      let once = Metrics.merge_snapshots [ s ] in
      Metrics.merge_snapshots [ once ] = once
      && List.for_all
           (fun (n, v) -> Metrics.counter_value once n = v)
           s.Metrics.counters)

(* ------------------------------------------------------------------ *)
(* (h) request diagnostics: sampling, slowlog, exemplars, SLO          *)
(* ------------------------------------------------------------------ *)

module Sampling = Faerie_obs.Sampling
module Slowlog = Faerie_obs.Slowlog
module Slo = Faerie_obs.Slo
module Build_info = Faerie_obs.Build_info

let test_sampling_disabled_zero_captures () =
  Sampling.disarm ();
  check_bool "sampling off by default" false (Sampling.armed ());
  let before = Sampling.captures () in
  for ord = 0 to 999 do
    check_bool "disarmed decide is false" false (Sampling.decide ord)
  done;
  check_int "zero armed-path decisions while disarmed" before
    (Sampling.captures ())

let test_sampling_determinism () =
  Fun.protect ~finally:Sampling.disarm @@ fun () ->
  (* The fraction behind every decision is a pure function of
     (seed, ordinal). *)
  for ord = 0 to 99 do
    let f = Sampling.fraction ~seed:7 ord in
    check_bool "fraction in [0,1)" true (f >= 0. && f < 1.);
    Alcotest.(check (float 0.)) "fraction is pure" f
      (Sampling.fraction ~seed:7 ord)
  done;
  check_bool "seed decorrelates ordinals" true
    (Sampling.fraction ~seed:1 42 <> Sampling.fraction ~seed:2 42);
  Sampling.configure ~seed:7 0.35;
  check_bool "armed" true (Sampling.armed ());
  Alcotest.(check (float 0.)) "rate reported" 0.35 (Sampling.rate ());
  let before = Sampling.captures () in
  let dec1 = List.init 200 Sampling.decide in
  check_int "armed decisions counted" (before + 200) (Sampling.captures ());
  List.iteri
    (fun ord d ->
      check_bool "decide agrees with the exposed fraction" d
        (Sampling.fraction ~seed:7 ord < 0.35))
    dec1;
  check_bool "a 0.35 rate samples some but not all" true
    (List.exists Fun.id dec1 && not (List.for_all Fun.id dec1));
  (* Decisions survive a disarm/re-arm cycle: reproducible across runs. *)
  Sampling.disarm ();
  Sampling.configure ~seed:7 0.35;
  check_bool "decisions survive re-arming" true
    (List.init 200 Sampling.decide = dec1);
  (* Topology independence: 4 shards each deciding their own ordinals
     (round-robin partition, shard-local order) sample exactly the
     ordinals one sequential process would. *)
  let ords = List.init 200 Fun.id in
  let single = List.filter Sampling.decide ords in
  let sharded =
    List.concat_map
      (fun shard ->
        List.filter Sampling.decide
          (List.filter (fun o -> o mod 4 = shard) ords))
      [ 0; 1; 2; 3 ]
    |> List.sort compare
  in
  check_bool "4-shard sampling matches 1-shard ordinals" true
    (single = sharded);
  (* Rate edges: clamped to 1.0, and rate 1.0 samples everything. *)
  Sampling.configure ~seed:7 2.0;
  Alcotest.(check (float 0.)) "rate clamps to 1.0" 1.0 (Sampling.rate ());
  check_bool "rate 1.0 samples every ordinal" true
    (List.for_all Sampling.decide ords);
  Sampling.configure ~seed:7 0.0;
  check_bool "rate 0 disarms" false (Sampling.armed ());
  (* Trace-id convention: ordinal + 1, with 0 reserved for no-trace. *)
  List.iter
    (fun o ->
      check_bool "trace id is never 0" true (Sampling.trace_id o <> 0);
      check_int "ord_of_trace inverts trace_id" o
        (Sampling.ord_of_trace (Sampling.trace_id o)))
    [ 0; 1; 41; 65535 ]

let test_slowlog_disabled_zero_captures () =
  Slowlog.disarm ();
  check_bool "slowlog off by default" false (Slowlog.armed ());
  let before = Slowlog.captures () in
  check_bool "no capture decision while disarmed" false
    (Slowlog.should_capture ~wall_ns:1e12);
  Slowlog.capture ~wall_ns:1e12 "{\"never\":1}";
  (* A full extraction exercises every Prof.with_stage bracket; none may
     touch the armed path. *)
  let ex = Extractor.create ~sim:(Sim.Edit_distance 2) ~q:2 paper_dict in
  let report = Extractor.run ex (`Text paper_doc) in
  check_bool "run ok" true (Outcome.is_ok report.Extractor.outcome);
  check_int "zero armed-path activations while disarmed" before
    (Slowlog.captures ());
  check_int "nothing retained" 0 (List.length (Slowlog.drain ()))

let test_slowlog_ring () =
  Fun.protect ~finally:Slowlog.disarm @@ fun () ->
  Slowlog.configure ~capacity:2 ();
  check_bool "armed" true (Slowlog.armed ());
  check_bool "ring-only capture has no write-through threshold" true
    (Slowlog.slow_ns () = Float.infinity);
  check_bool "empty ring accepts anything" true
    (Slowlog.should_capture ~wall_ns:1.);
  Slowlog.capture ~wall_ns:5e6 "five";
  Slowlog.capture ~wall_ns:1e6 "one";
  Slowlog.capture ~wall_ns:9e6 "nine";
  (* capacity 2: "one" (the least slow) was evicted. *)
  check_int "total counts evicted records too" 3 (Slowlog.total ());
  (match Slowlog.drain () with
  | [ (w1, l1); (w2, l2) ] ->
      check_string "slowest first" "nine" l1;
      check_string "runner-up second" "five" l2;
      check_bool "wall times ordered" true (w1 > w2)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 2 ring entries, got %d" (List.length l)));
  check_bool "full ring rejects a faster request" false
    (Slowlog.should_capture ~wall_ns:2e6);
  check_bool "full ring accepts a slower request" true
    (Slowlog.should_capture ~wall_ns:6e6)

let read_all path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_slowlog_write_through_and_flush () =
  let path = Filename.temp_file "faerie_slowlog" ".ndjson" in
  Fun.protect
    ~finally:(fun () ->
      Slowlog.disarm ();
      Sys.remove path)
  @@ fun () ->
  Slowlog.configure ~capacity:4 ~slow_ms:10. ~path ();
  check_bool "threshold in ns" true (Slowlog.slow_ns () = 10. *. 1e6);
  Slowlog.capture ~wall_ns:50e6 "over";
  Slowlog.capture ~wall_ns:1e6 "under";
  check_string "over-threshold records write through immediately" "over\n"
    (read_all path);
  Slowlog.disarm ();
  check_string "disarm flushes the below-threshold ring tail" "over\nunder\n"
    (read_all path)

let test_slowlog_stage_scratch () =
  Fun.protect
    ~finally:(fun () ->
      Slowlog.disarm ();
      Trace.set_clock None)
  @@ fun () ->
  (* A deterministic clock drives the stage brackets: each read advances
     10 ns, so one bracket measures exactly 10. *)
  let t = ref 0L in
  Trace.set_clock
    (Some
       (fun () ->
         t := Int64.add !t 10L;
         !t));
  Slowlog.configure ();
  check_bool "stage brackets armed with the ring" true (Slowlog.stage_armed ());
  check_int "stage table has 4 stages" 4 Slowlog.n_stages;
  check_string "stage 0" "tokenize" (Slowlog.stage_name 0);
  check_string "stage 3" "verify" (Slowlog.stage_name 3);
  Slowlog.doc_begin ();
  check_bool "scratch is unsealed at doc_begin" true (Slowlog.last_doc () = None);
  (* Prof.with_stage feeds the scratch even with Prof itself disabled. *)
  check_bool "prof stays off" false (Prof.enabled ());
  Prof.with_stage Prof.Tokenize (fun () -> ());
  Slowlog.note_stage 3 5.0;
  Slowlog.doc_end ~wall_ns:1234. ~trace:42;
  match Slowlog.last_doc () with
  | None -> Alcotest.fail "sealed scratch expected after doc_end"
  | Some d ->
      Alcotest.(check (float 0.)) "wall sealed" 1234. d.Slowlog.wall_ns;
      check_int "trace sealed" 42 d.Slowlog.trace;
      Alcotest.(check (float 0.)) "tokenize bracket measured by the clock" 10.
        d.Slowlog.stages_ns.(0);
      Alcotest.(check (float 0.)) "verify stage accumulated" 5.
        d.Slowlog.stages_ns.(3)

let test_exemplar_capture () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2. |] "gamma" in
  Metrics.observe h 0.5;
  Metrics.observe_ex h 1.5 ~trace:7;
  Metrics.observe_ex h 1.8 ~trace:3;
  Metrics.observe_ex h 10. ~trace:9;
  Metrics.observe_ex h 0.25 ~trace:0;
  let snap = Metrics.snapshot ~registry:reg () in
  match snap.Metrics.histograms with
  | [ ("gamma", hs) ] ->
      check_int "traced observations still count" 5 hs.Metrics.count;
      Alcotest.(check (array int)) "counts" [| 2; 2; 1 |] hs.Metrics.counts;
      check_int "one exemplar cell per bucket" 3
        (Array.length hs.Metrics.exemplars);
      check_bool "untraced bucket holds no exemplar" true
        (hs.Metrics.exemplars.(0) = (0, 0.));
      check_bool "larger value wins the bucket" true
        (hs.Metrics.exemplars.(1) = (3, 1.8));
      check_bool "overflow bucket carries its exemplar" true
        (hs.Metrics.exemplars.(2) = (9, 10.))
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_exemplar_merge_law () =
  let hsnap exemplars counts =
    {
      Metrics.upper = [| 1.; 2. |];
      counts;
      sum = 0.;
      count = Array.fold_left ( + ) 0 counts;
      exemplars;
    }
  in
  let snap hs = { Metrics.counters = []; gauges = []; histograms = hs } in
  let a =
    snap [ ("h", hsnap [| (1, 0.5); (0, 0.); (4, 7.) |] [| 1; 0; 1 |]) ]
  in
  let b =
    snap [ ("h", hsnap [| (2, 0.25); (5, 1.5); (3, 7.) |] [| 1; 1; 1 |]) ]
  in
  let c = snap [ ("h", hsnap [||] [| 1; 0; 0 |]) ] in
  let m = Metrics.merge_snapshots [ a; b; c ] in
  match m.Metrics.histograms with
  | [ ("h", hs) ] ->
      check_int "counts still sum" 6 hs.Metrics.count;
      (* Bucket 0: 0.5 beats 0.25; bucket 1: an exemplar beats none;
         bucket 2: equal values break toward the larger trace id. *)
      check_bool "per-bucket max-by-value, ties to larger trace" true
        (hs.Metrics.exemplars = [| (1, 0.5); (5, 1.5); (4, 7.) |])
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_exemplar_export_schema () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2. |] "gamma" in
  Metrics.observe h 0.5;
  Metrics.observe_ex h 1.5 ~trace:7;
  check_string "jsonl histogram line carries exemplars"
    "{\"type\":\"histogram\",\"name\":\"gamma\",\"upper\":[1,2],\"counts\":[1,1,0],\"sum\":2,\"count\":2,\"exemplars\":[{\"i\":1,\"trace\":7,\"value\":1.5}]}\n"
    (Metrics.to_jsonl ~registry:reg ());
  (* OpenMetrics: cumulative bucket counts, with the bucket's (non-
     cumulative) exemplar as a hash-comment suffix on the bucket line. *)
  check_string "prometheus exemplar suffix"
    ("# TYPE gamma histogram\n"
   ^ "gamma_bucket{le=\"1\"} 1\n"
   ^ "gamma_bucket{le=\"2\"} 2 # {trace_id=\"7\"} 1.5\n"
   ^ "gamma_bucket{le=\"+Inf\"} 2\n"
   ^ "gamma_sum 2\ngamma_count 2\n")
    (Metrics.to_prometheus ~registry:reg ())

let test_graft_edge_cases () =
  (* A frozen clock pins graft's no-later-than-now clamp. *)
  Trace.set_clock (Some (fun () -> 1000L));
  Trace.enable ();
  ignore (Trace.drain ());
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.set_clock None;
      ignore (Trace.drain ()))
  @@ fun () ->
  let span ?(depth = 1) ?(dur = 0L) name start =
    {
      Trace.name;
      start_ns = start;
      dur_ns = dur;
      depth;
      domain = 99;
      trace = 1;
      ok = true;
      attrs = [];
    }
  in
  (* Zero-duration span from the future: pulled back so start = end =
     now, never past it. *)
  Trace.graft [ span "zero" 5000L ];
  (match Trace.drain () with
  | [ s ] ->
      check_bool "future zero-duration span clamps to now" true
        (s.Trace.start_ns = 1000L && s.Trace.dur_ns = 0L);
      check_int "re-domained to the grafting domain"
        (Domain.self () :> int)
        s.Trace.domain
  | l -> Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length l)));
  (* lo_ns: a span must not start before the enclosing request span. *)
  Trace.graft ~lo_ns:500L [ span "early" 0L ~dur:100L ];
  (match Trace.drain () with
  | [ s ] ->
      check_bool "lo_ns pulls the subtree forward" true
        (s.Trace.start_ns = 500L && s.Trace.dur_ns = 100L)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length l)));
  (* Both clamps shift the subtree uniformly: relative offsets survive. *)
  Trace.graft ~offset_ns:2000L
    [ span "parent" 0L ~depth:0 ~dur:100L; span "child" 50L ~dur:0L ];
  (match Trace.drain () with
  | [ p; c ] ->
      check_bool "subtree end pulled back to now" true
        (Int64.add p.Trace.start_ns p.Trace.dur_ns <= 1000L);
      check_bool "uniform shift preserves relative offsets" true
        (Int64.sub c.Trace.start_ns p.Trace.start_ns = 50L)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l)))

let test_flame_no_negative_self_time () =
  (* Zero-duration and full-width children must never drive a parent's
     self-time negative. *)
  let span name start dur depth =
    {
      Trace.name;
      start_ns = start;
      dur_ns = dur;
      depth;
      domain = 1;
      trace = 0;
      ok = true;
      attrs = [];
    }
  in
  let spans =
    [
      span "root" 0L 100L 0;
      span "full" 0L 100L 1 (* consumes all of root's time *);
      span "zero" 0L 0L 2 (* zero-duration grandchild *);
      span "late_zero" 100L 0L 1;
    ]
  in
  let frames = Prof.flame_of_spans spans in
  List.iter
    (fun f ->
      check_bool
        (Printf.sprintf "no negative self-time for %s"
           (String.concat ";" f.Prof.stack))
        true
        (Int64.compare f.Prof.self_ns 0L >= 0))
    frames;
  (match List.find_opt (fun f -> f.Prof.stack = [ "root" ]) frames with
  | Some f -> check_bool "root self-time fully discharged" true (f.Prof.self_ns = 0L)
  | None -> Alcotest.fail "root frame expected");
  (* The folded rendering drops zero-self frames rather than emitting
     negative or empty weights. *)
  let folded = Prof.to_folded frames in
  check_bool "folded omits zero-self frames" false
    (has_substring folded "root 0")

let test_slo_parse () =
  (match Slo.parse "p99=50ms,avail=99.9" with
  | Error e -> Alcotest.fail e
  | Ok o ->
      (match o.Slo.latency with
      | Some (q, thr_ns) ->
          Alcotest.(check (float 0.)) "quantile" 0.99 q;
          Alcotest.(check (float 0.)) "threshold in ns" 5e7 thr_ns
      | None -> Alcotest.fail "latency objective expected");
      (match o.Slo.avail with
      | Some a -> Alcotest.(check (float 1e-12)) "avail fraction" 0.999 a
      | None -> Alcotest.fail "avail objective expected");
      check_string "render/reparse fixpoint" "p99=50ms,avail=99.9"
        (Slo.to_string o));
  (match Slo.parse "p99.9=2s" with
  | Ok { Slo.latency = Some (q, thr_ns); avail = None } ->
      Alcotest.(check (float 1e-12)) "p99.9" 0.999 q;
      Alcotest.(check (float 0.)) "2s in ns" 2e9 thr_ns
  | _ -> Alcotest.fail "p99.9=2s must parse");
  (match Slo.parse "avail=0.999" with
  | Ok { Slo.avail = Some a; latency = None } ->
      Alcotest.(check (float 0.)) "fraction form" 0.999 a
  | _ -> Alcotest.fail "avail=0.999 must parse");
  List.iter
    (fun bad ->
      match Slo.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must be rejected" bad)
      | Error _ -> ())
    [ ""; "p99"; "p0=5ms"; "p100=5ms"; "p99=50parsecs"; "avail=101"; "foo=1" ]

let test_slo_fraction_le () =
  let check_float = Alcotest.(check (float 1e-9)) in
  let h = hist ~upper:[| 10.; 20.; 30. |] ~counts:[| 1; 1; 1; 0 |] in
  check_float "dual of the median" 0.5 (Slo.fraction_le h 15.);
  check_float "at a bucket bound" (1. /. 3.) (Slo.fraction_le h 10.);
  check_float "above all bounds" 1.0 (Slo.fraction_le h 100.);
  check_float "below everything" 0. (Slo.fraction_le h 0.);
  let overflow = hist ~upper:[| 10. |] ~counts:[| 0; 2 |] in
  check_float "overflow mass sits above any finite x" 0.
    (Slo.fraction_le overflow 10.);
  let empty = hist ~upper:[| 10. |] ~counts:[| 0; 0 |] in
  check_bool "empty histogram is nan" true
    (Float.is_nan (Slo.fraction_le empty 5.))

let test_slo_assess_burn () =
  let objective =
    match Slo.parse "p50=1ms,avail=99" with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let t = Slo.tracker () in
  let snap counters histograms = { Metrics.counters; gauges = []; histograms } in
  let first =
    Slo.assess ~now_s:100. t objective (snap [ ("docs_processed", 0) ] [])
  in
  Alcotest.(check (float 0.)) "first window has no span" 0. first.Slo.window_s;
  check_bool "no traffic, no burn" false first.Slo.burning;
  (* Window: 10 docs, 5 over the 1ms threshold, 2 failed. *)
  let wall =
    {
      Metrics.upper = [| 1e6 |];
      counts = [| 5; 5 |];
      sum = 0.;
      count = 10;
      exemplars = [||];
    }
  in
  let snap1 =
    snap
      [ ("docs_processed", 10); ("docs_failed", 2) ]
      [ ("doc_wall_ns", wall) ]
  in
  let a = Slo.assess ~now_s:130. t objective snap1 in
  Alcotest.(check (float 1e-9)) "window span" 30. a.Slo.window_s;
  check_int "docs in window" 10 a.Slo.docs;
  (* Latency: bad 0.5 against budget 1 - 0.5 -> burn exactly 1.0, which
     is sustainable, not burning. *)
  (match a.Slo.burn_latency with
  | Some b -> Alcotest.(check (float 1e-9)) "latency burn" 1.0 b
  | None -> Alcotest.fail "latency burn expected");
  (* Availability: bad 0.2 against budget 0.01 -> burn 20. *)
  (match a.Slo.burn_avail with
  | Some b -> Alcotest.(check (float 1e-9)) "avail burn" 20. b
  | None -> Alcotest.fail "avail burn expected");
  (match a.Slo.avail_measured with
  | Some m -> Alcotest.(check (float 1e-9)) "measured availability" 0.8 m
  | None -> Alcotest.fail "avail measurement expected");
  check_bool "burn over 1.0 reports burning" true a.Slo.burning;
  (* An idle window (identical snapshot) deltas to zero everywhere. *)
  let a2 = Slo.assess ~now_s:160. t objective snap1 in
  check_int "idle window saw no docs" 0 a2.Slo.docs;
  check_bool "idle window does not burn" false a2.Slo.burning;
  (* A shrinking counter (shard restarted and re-counted) clamps the
     delta to the current reading instead of going negative. *)
  let snap3 =
    snap [ ("docs_processed", 4) ] [ ("doc_wall_ns", wall) ]
  in
  let a3 = Slo.assess ~now_s:190. t objective snap3 in
  check_int "shrinking counter clamps to current reading" 4 a3.Slo.docs;
  (* to_json schema lock. *)
  check_string "assessment json schema"
    "{\"window_s\":30,\"docs\":0,\"latency\":{\"q\":0.5,\"target_ms\":1,\"measured_ms\":null,\"bad_frac\":null,\"burn\":null},\"avail\":{\"target\":0.99,\"measured\":null,\"burn\":null},\"burning\":false}"
    (Slo.to_json a2)

let test_build_info () =
  let r = Build_info.rev () in
  check_bool "rev is non-empty" true (String.length r > 0);
  check_string "rev is memoized" r (Build_info.rev ());
  let reg = Metrics.create () in
  Build_info.note ~registry:reg ();
  (* Re-noting (a forked shard after Metrics.reset) must be idempotent. *)
  Build_info.note ~registry:reg ();
  let snap = Metrics.snapshot ~registry:reg () in
  match List.assoc_opt "build_info" snap.Metrics.gauges with
  | Some g ->
      Alcotest.(check (float 0.)) "constant 1" 1.0 g.Metrics.value;
      check_bool "max-aggregated across shards" true (g.Metrics.agg = `Max);
      check_bool "labeled with the revision" true
        (g.Metrics.label = Some ("build_info", "rev", r))
  | None -> Alcotest.fail "build_info gauge expected"

let () =
  Alcotest.run "faerie_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters match stats at every pruning level"
            `Quick test_counters_match_stats;
          Alcotest.test_case "metrics:false suppresses the run" `Quick
            test_metrics_suppressed_run;
          Alcotest.test_case "histogram bucket totals" `Quick
            test_histogram_totals;
          Alcotest.test_case "pipeline histogram totals" `Quick
            test_pipeline_histogram_totals;
          Alcotest.test_case "registry mechanics" `Quick test_registry_mechanics;
          Alcotest.test_case "max gauges merge by maximum" `Quick
            test_gauge_max_merge;
          Alcotest.test_case "prometheus escapes hostile help strings" `Quick
            test_prometheus_hostile_help;
          Alcotest.test_case "with_suppressed nests across an exception"
            `Quick test_suppressed_nesting_exception;
        ] );
      ( "explain",
        [
          Alcotest.test_case "waterfall equals stats at every pruning level"
            `Quick test_explain_matches_stats;
          Alcotest.test_case "one sink accumulates across documents" `Quick
            test_explain_sink_reuse_accumulates;
          Alcotest.test_case "disarmed hooks are inert" `Quick
            test_explain_disarmed_is_inert;
          Alcotest.test_case "event jsonl schema" `Quick
            test_explain_jsonl_schema;
        ] );
      ( "perf",
        [
          Alcotest.test_case "quantile estimation" `Quick test_quantile;
          Alcotest.test_case "bench json schema" `Quick test_bench_json_schema;
          Alcotest.test_case "bench json roundtrip" `Quick
            test_bench_json_roundtrip;
          Alcotest.test_case "bench json rejects bad input" `Quick
            test_bench_json_rejects;
          Alcotest.test_case "v1 snapshots still parse" `Quick
            test_bench_json_v1_compat;
          Alcotest.test_case "regression comparison" `Quick
            test_compare_benches;
          Alcotest.test_case "allocation gate" `Quick test_compare_alloc_gate;
        ] );
      ( "prof",
        [
          Alcotest.test_case "disabled means zero Gc.quick_stat calls" `Quick
            test_prof_disabled_zero_captures;
          Alcotest.test_case "enabled populates gc metrics" `Quick
            test_prof_enabled_populates_metrics;
          Alcotest.test_case "aggregation is deterministic across domains"
            `Quick test_prof_parallel_aggregation;
          Alcotest.test_case "folded flame schema" `Quick
            test_flame_folded_locked;
          Alcotest.test_case "flame merges identical stacks across domains"
            `Quick test_flame_merges_across_domains;
        ] );
      ( "shards",
        [
          Alcotest.test_case "4-domain batch merges without losing counts"
            `Quick test_parallel_shard_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans nest and close under injected fault"
            `Quick test_spans_nest_under_fault;
          Alcotest.test_case "drain orders deterministically across domains"
            `Quick test_trace_drain_cross_domain;
        ] );
      ( "schema",
        [
          Alcotest.test_case "metrics jsonl" `Quick test_metrics_jsonl_schema;
          Alcotest.test_case "prometheus text" `Quick test_prometheus_schema;
          Alcotest.test_case "prometheus labeled family" `Quick
            test_prometheus_labeled_family;
          Alcotest.test_case "prometheus label escaping" `Quick
            test_prometheus_label_escaping;
          Alcotest.test_case "trace jsonl" `Quick test_trace_jsonl_schema;
        ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest merge_permutation_invariant;
          QCheck_alcotest.to_alcotest merge_associative;
          QCheck_alcotest.to_alcotest merge_identity;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "sampling disabled is one atomic load" `Quick
            test_sampling_disabled_zero_captures;
          Alcotest.test_case "sampling is deterministic in (seed, ordinal)"
            `Quick test_sampling_determinism;
          Alcotest.test_case "slowlog disabled is one atomic load" `Quick
            test_slowlog_disabled_zero_captures;
          Alcotest.test_case "slowlog ring keeps the K slowest" `Quick
            test_slowlog_ring;
          Alcotest.test_case "slowlog write-through and flush" `Quick
            test_slowlog_write_through_and_flush;
          Alcotest.test_case "slowlog stage scratch seals per document"
            `Quick test_slowlog_stage_scratch;
          Alcotest.test_case "exemplar capture per bucket" `Quick
            test_exemplar_capture;
          Alcotest.test_case "exemplar merge is max-by-value" `Quick
            test_exemplar_merge_law;
          Alcotest.test_case "exemplar export schema" `Quick
            test_exemplar_export_schema;
          Alcotest.test_case "graft clamps skewed subtrees" `Quick
            test_graft_edge_cases;
          Alcotest.test_case "flame self-time never negative" `Quick
            test_flame_no_negative_self_time;
          Alcotest.test_case "slo spec parsing" `Quick test_slo_parse;
          Alcotest.test_case "fraction_le is the quantile dual" `Quick
            test_slo_fraction_le;
          Alcotest.test_case "slo burn-rate over a delta window" `Quick
            test_slo_assess_burn;
          Alcotest.test_case "build_info gauge" `Quick test_build_info;
        ] );
    ]
