(* End-to-end tests of the faerie CLI binary: each subcommand is run as a
   subprocess against a temporary dictionary/corpus. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The CLI binary is declared as a test dependency and sits next to this
   test executable in the build tree (resolve it from the executable path
   so the test works both under `dune runtest` and `dune exec`). *)
let cli =
  let test_dir = Filename.dirname Sys.executable_name in
  Filename.concat (Filename.concat (Filename.dirname test_dir) "bin") "faerie_cli.exe"

let run_cli args =
  let cmd = Filename.quote_command cli args in
  let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  let status = Unix.close_process_in ic in
  (status, lines)

let with_temp_dir f =
  let dir = Filename.temp_file "faerie_cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Sys.rmdir path
        end
        else Sys.remove path
      in
      rm dir)
    (fun () -> f dir)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let paper_dict_file dir =
  let path = Filename.concat dir "dict.txt" in
  write_file path "kaushik ch\nchakrabarti\nchaudhuri\nvenkatesh\nsurajit ch\n";
  path

let paper_doc_file dir =
  let path = Filename.concat dir "doc.txt" in
  write_file path
    "an efficient filter for approximate membership checking. venkaee shga \
     kamunshik kabarati, dong xin, surauijt chadhurisigmod.";
  path

let test_extract_finds_paper_matches () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      let status, lines =
        run_cli [ "extract"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; doc ]
      in
      check_bool "exit 0" true (status = Unix.WEXITED 0);
      check_bool "several matches" true (List.length lines >= 3);
      check_bool "finds venkaee sh" true
        (List.exists
           (fun l ->
             String.length l > 0
             && Str.string_match (Str.regexp ".*venkaee sh.*") l 0)
           lines))

let test_extract_top_k () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      let status, lines =
        run_cli [ "extract"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "--top"; "2"; doc ]
      in
      check_bool "exit 0" true (status = Unix.WEXITED 0);
      check_int "exactly k lines" 2 (List.length lines))

let test_extract_select_non_overlapping () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      let _, raw = run_cli [ "extract"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; doc ] in
      let _, selected =
        run_cli [ "extract"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "--select"; doc ]
      in
      (* "surauijt ch" overlaps the "chadhuri" cluster, so selection keeps
         one span per region: venkatesh's plus the better of the two. *)
      check_bool "selection shrinks output" true
        (List.length selected < List.length raw && List.length selected >= 2))

let test_index_roundtrip_cli () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      let idx = Filename.concat dir "dict.fidx" in
      let status, _ =
        run_cli [ "index"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "-o"; idx ]
      in
      check_bool "index exit 0" true (status = Unix.WEXITED 0);
      check_bool "index file written" true (Sys.file_exists idx);
      let _, from_dict = run_cli [ "extract"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; doc ] in
      let _, from_index = run_cli [ "extract"; "-x"; idx; "-s"; "ed=2"; doc ] in
      (* Output lines are identical except the first column (file name). *)
      let strip l = String.concat "\t" (List.tl (String.split_on_char '\t' l)) in
      Alcotest.(check (list string))
        "same matches" (List.map strip from_dict) (List.map strip from_index))

let test_stats_reports_counts () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir in
      let status, lines = run_cli [ "stats"; "-d"; dict; "-s"; "ed=2"; "-q"; "2" ] in
      check_bool "exit 0" true (status = Unix.WEXITED 0);
      check_bool "entity count reported" true
        (List.exists (fun l -> Str.string_match (Str.regexp "entities: *5") l 0) lines))

let test_gen_writes_corpus () =
  with_temp_dir (fun dir ->
      let out = Filename.concat dir "corpus" in
      let status, _ =
        run_cli
          [ "gen"; "--profile"; "dblp"; "--entities"; "50"; "--documents"; "3";
            "-o"; out ]
      in
      check_bool "exit 0" true (status = Unix.WEXITED 0);
      check_bool "entities.txt" true
        (Sys.file_exists (Filename.concat out "entities.txt"));
      check_int "3 documents" 3
        (Array.length (Sys.readdir (Filename.concat out "docs"))))

let test_missing_source_fails () =
  let status, _ = run_cli [ "extract"; "-s"; "ed=1"; "/dev/null" ] in
  check_bool "non-zero exit" true (status <> Unix.WEXITED 0)

let test_bad_sim_spec_fails () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir in
      let status, _ = run_cli [ "extract"; "-d"; dict; "-s"; "nonsense"; "/dev/null" ] in
      check_bool "non-zero exit" true (status <> Unix.WEXITED 0))

let test_extract_metrics_file () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      let metrics_file = Filename.concat dir "metrics.jsonl" in
      let trace_file = Filename.concat dir "trace.jsonl" in
      let status, _ =
        run_cli
          [ "extract"; "-d"; dict; "-s"; "ed=2"; "-q"; "2";
            "--metrics=" ^ metrics_file; "--trace=" ^ trace_file; doc ]
      in
      check_int "exit 0" 0 (match status with Unix.WEXITED n -> n | _ -> -1);
      let read_lines path =
        let ic = open_in path in
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file ->
              close_in ic;
              List.rev acc
        in
        go []
      in
      let metrics = read_lines metrics_file in
      let has re = List.exists (fun l ->
          try ignore (Str.search_forward (Str.regexp re) l 0); true
          with Not_found -> false)
          metrics
      in
      check_bool "docs_processed counted" true
        (has "\"name\":\"docs_processed\",\"value\":1");
      check_bool "candidates counted" true
        (has "\"name\":\"candidates_generated\",\"value\":[1-9]");
      check_bool "every line is an object" true
        (List.for_all
           (fun l ->
             String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}')
           metrics);
      let traces = read_lines trace_file in
      check_bool "trace has filter span" true
        (List.exists
           (fun l ->
             try
               ignore (Str.search_forward (Str.regexp "\"name\":\"filter\"") l 0);
               true
             with Not_found -> false)
           traces))

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let has_match re lines =
  List.exists
    (fun l ->
      try
        ignore (Str.search_forward (Str.regexp re) l 0);
        true
      with Not_found -> false)
    lines

let exit_code = function Unix.WEXITED n -> n | _ -> -1

let test_explain_waterfall () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      let status, lines =
        run_cli [ "explain"; dict; doc; "-s"; "ed=2"; "-q"; "2" ]
      in
      check_int "exit 0" 0 (exit_code status);
      check_bool "waterfall header" true
        (has_match "filter-cascade waterfall" lines);
      check_bool "heap stage reported" true
        (has_match "entities streamed off the heap" lines);
      check_bool "verify stage reported" true
        (has_match "verified matches" lines))

let test_explain_jsonl () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      let out = Filename.concat dir "events.jsonl" in
      (* Positionals first: --jsonl with no '=' would swallow the next
         token as its optional value. *)
      let status, _ =
        run_cli
          [ "explain"; dict; doc; "-s"; "ed=2"; "-q"; "2"; "--jsonl=" ^ out ]
      in
      check_int "exit 0" 0 (exit_code status);
      let events = read_lines out in
      check_bool "events recorded" true (List.length events > 3);
      (match events with
      | first :: _ ->
          Alcotest.(check string) "opens with the doc marker"
            "{\"ev\":\"doc\",\"doc_id\":0}" first
      | [] -> Alcotest.fail "empty event dump");
      check_bool "every line is a tagged event" true
        (List.for_all
           (fun l ->
             String.length l > 8
             && String.sub l 0 7 = "{\"ev\":\""
             && l.[String.length l - 1] = '}')
           events);
      check_bool "candidates audited" true
        (has_match "\"ev\":\"candidate\"" events);
      check_bool "filter completion audited" true
        (has_match "\"ev\":\"filter_done\"" events);
      check_bool "verification audited" true
        (has_match "\"ev\":\"verify\"" events))

let test_extract_explain_file () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      let out = Filename.concat dir "explain.jsonl" in
      let status, lines =
        run_cli
          [ "extract"; "-d"; dict; "-s"; "ed=2"; "-q"; "2";
            "--explain=" ^ out; doc ]
      in
      check_int "exit 0" 0 (exit_code status);
      check_bool "matches still printed" true (List.length lines >= 3);
      let events = read_lines out in
      check_bool "doc event present" true (has_match "\"ev\":\"doc\"" events);
      check_bool "verify events present" true
        (has_match "\"ev\":\"verify\"" events))

let test_extract_verifier_flag () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      (* The engine choice must not change results, and the explain log
         must echo it. *)
      let run verifier =
        let out = Filename.concat dir ("explain_" ^ verifier ^ ".jsonl") in
        let status, lines =
          run_cli
            [ "extract"; "-d"; dict; "-s"; "ed=2"; "-q"; "2";
              "--verifier"; verifier; "--explain=" ^ out; doc ]
        in
        check_int ("exit 0 " ^ verifier) 0 (exit_code status);
        check_bool ("choice echoed " ^ verifier) true
          (has_match
             (Printf.sprintf "\"ev\":\"verifier\",\"choice\":\"%s\"" verifier)
             (read_lines out));
        lines
      in
      let myers = run "myers" and banded = run "banded" and auto = run "auto" in
      check_bool "myers == banded results" true (myers = banded);
      check_bool "auto == banded results" true (auto = banded);
      let status, _ =
        run_cli
          [ "extract"; "-d"; dict; "-s"; "ed=2"; "-q"; "2";
            "--verifier"; "bogus"; doc ]
      in
      check_bool "unknown engine rejected" true (exit_code status <> 0))

let test_extract_metrics_prom () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      let out = Filename.concat dir "metrics.prom" in
      let status, _ =
        run_cli
          [ "extract"; "-d"; dict; "-s"; "ed=2"; "-q"; "2";
            "--metrics=" ^ out; "--metrics-format=prom"; doc ]
      in
      check_int "exit 0" 0 (exit_code status);
      let lines = read_lines out in
      check_bool "type comments present" true
        (has_match "^# TYPE docs_processed counter" lines);
      check_bool "counter sample present" true
        (has_match "^docs_processed 1$" lines);
      check_bool "histogram cells present" true
        (has_match "_bucket{le=\"\\+Inf\"}" lines))

let bench_snapshot ~wall_s =
  Printf.sprintf
    "{\"schema\":\"faerie-bench-v1\",\"git_rev\":\"test\",\"scale\":1,\"ocaml\":\"5.1.1\",\"exhibits\":[\n\
     {\"name\":\"smoke\",\"wall_s\":%s,\"tokens\":100,\"tokens_per_s\":100,\"candidates\":10,\"pruned\":2,\"verify_calls\":8,\"matches\":3,\"doc_wall_ns\":{\"p50\":null,\"p90\":null,\"p99\":null}}\n\
     ]}\n"
    wall_s

let test_regress_exit_codes () =
  with_temp_dir (fun dir ->
      let file name contents =
        let path = Filename.concat dir name in
        write_file path contents;
        path
      in
      let baseline = file "base.json" (bench_snapshot ~wall_s:"1.0") in
      let same = file "same.json" (bench_snapshot ~wall_s:"1.0") in
      let slow = file "slow.json" (bench_snapshot ~wall_s:"2.5") in
      let bad = file "bad.json" "this is not a bench snapshot" in
      let status, lines = run_cli [ "regress"; baseline; same ] in
      check_int "identical snapshot passes" 0 (exit_code status);
      check_bool "PASS line printed" true (has_match "^PASS" lines);
      let status, lines = run_cli [ "regress"; baseline; slow ] in
      check_int "2.5x slowdown fails" 1 (exit_code status);
      check_bool "REGRESSED reported" true (has_match "REGRESSED" lines);
      let status, _ =
        run_cli [ "regress"; baseline; slow; "--max-ratio"; "3.0" ]
      in
      check_int "generous gate tolerates it" 0 (exit_code status);
      let status, _ = run_cli [ "regress"; baseline; bad ] in
      check_int "malformed snapshot exits 2" 2 (exit_code status))

(* v2 snapshot with a gc block; wall time fixed so only the allocation
   gate can fire. *)
let bench_snapshot_v2 ~minor_words =
  Printf.sprintf
    "{\"schema\":\"faerie-bench-v2\",\"git_rev\":\"test\",\"scale\":1,\"ocaml\":\"5.1.1\",\"exhibits\":[\n\
     {\"name\":\"smoke\",\"wall_s\":1.0,\"tokens\":100,\"tokens_per_s\":100,\"candidates\":10,\"pruned\":2,\"verify_calls\":8,\"matches\":3,\"doc_wall_ns\":{\"p50\":null,\"p90\":null,\"p99\":null},\"alloc_per_doc\":{\"p50\":1000,\"p90\":2000,\"p99\":null},\"gc\":{\"minor_words\":%s,\"promoted_words\":100,\"major_collections\":0,\"top_heap_bytes\":1048576,\"words_per_token\":120}}\n\
     ]}\n"
    minor_words

let test_regress_alloc_gate () =
  with_temp_dir (fun dir ->
      let file name contents =
        let path = Filename.concat dir name in
        write_file path contents;
        path
      in
      let baseline = file "base.json" (bench_snapshot_v2 ~minor_words:"100000") in
      let bloated = file "bloat.json" (bench_snapshot_v2 ~minor_words:"200000") in
      let v1 = file "v1.json" (bench_snapshot ~wall_s:"1.0") in
      (* No alloc gate: a pure allocation regression passes the wall gate. *)
      let status, _ = run_cli [ "regress"; baseline; bloated ] in
      check_int "no gate ignores allocation" 0 (exit_code status);
      let status, lines =
        run_cli [ "regress"; baseline; bloated; "--max-alloc-ratio"; "1.5" ]
      in
      check_int "2x allocation fails the gate" 1 (exit_code status);
      check_bool "REGRESSED reported" true (has_match "REGRESSED" lines);
      let status, lines =
        run_cli [ "regress"; baseline; bloated; "--max-alloc-ratio"; "3.0" ]
      in
      check_int "generous alloc gate tolerates 2x" 0 (exit_code status);
      check_bool "PASS line printed" true (has_match "^PASS" lines);
      (* v1 baseline: nothing to gate against, even with the flag on. *)
      let status, _ =
        run_cli [ "regress"; v1; bloated; "--max-alloc-ratio"; "1.5" ]
      in
      check_int "v1 baseline exempt from alloc gate" 0 (exit_code status);
      (* gc present in baseline but absent in current: gate must fail. *)
      let status, _ =
        run_cli [ "regress"; baseline; v1; "--max-alloc-ratio"; "1.5" ]
      in
      check_int "vanished gc fails the gate" 1 (exit_code status))

let test_flame_profile () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir and doc = paper_doc_file dir in
      let folded = Filename.concat dir "prof.folded" in
      let status, lines =
        run_cli
          [ "flame"; dict; doc; "-s"; "ed=2"; "-q"; "2";
            "--folded=" ^ folded; "--top"; "10" ]
      in
      check_int "exit 0" 0 (exit_code status);
      check_bool "self-time table on stdout" true
        (has_match "extract_doc" lines);
      let stacks = read_lines folded in
      check_bool "folded file non-empty" true (stacks <> []);
      (* Every folded line is "frame(;frame)* SELF_NS". *)
      check_bool "folded line grammar" true
        (List.for_all
           (fun l ->
             Str.string_match
               (Str.regexp "^[a-z_]+\\(;[a-z_]+\\)* [0-9]+$")
               l 0)
           stacks);
      check_bool "root stack present" true
        (List.exists
           (fun l -> Str.string_match (Str.regexp "^extract_doc ") l 0)
           stacks);
      check_bool "nested stack present" true
        (has_match "^extract_doc;filter" stacks))

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let fuzz =
  let test_dir = Filename.dirname Sys.executable_name in
  Filename.concat (Filename.concat (Filename.dirname test_dir) "bin") "fuzz.exe"

let run_fuzz args =
  let cmd = Filename.quote_command fuzz args in
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  let status = Unix.close_process_in ic in
  (status, lines)

(* Run the CLI with stdin redirected from a file, capturing stdout lines,
   stderr lines and the exit status. *)
let run_cli_io ~dir ~stdin_file args =
  let stderr_file = Filename.concat dir "serve-stderr.txt" in
  let cmd =
    Printf.sprintf "%s < %s 2> %s"
      (Filename.quote_command cli args)
      (Filename.quote stdin_file)
      (Filename.quote stderr_file)
  in
  let ic = Unix.open_process_in cmd in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let out = read [] in
  let status = Unix.close_process_in ic in
  (status, out, read_lines stderr_file)

let test_serve_ndjson_roundtrip () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir in
      let input = Filename.concat dir "input.ndjson" in
      write_file input
        ("{\"text\":\"surauijt chadhuri sigmod\",\"id\":\"d0\"}\n" ^ "\n"
       ^ "this is not json\n" ^ "{\"text\":\"venkaee shga spoke\"}\n");
      let status, out, err =
        run_cli_io ~dir ~stdin_file:input
          [ "serve"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "--domains"; "2" ]
      in
      check_int "exit 0" 0 (exit_code status);
      (* Blank line skipped: 2 documents + 1 decode error = 3 responses. *)
      check_int "3 responses" 3 (List.length out);
      check_bool "decode error response" true
        (has_match {|"outcome":"error"|} out);
      check_bool "ok responses carry matches" true
        (has_match {|"outcome":"ok".*"matches":\[{"e":|} out);
      check_bool "id echoed" true (has_match {|"id":"d0"|} out);
      check_bool "generation 0 before any reload" true
        (has_match {|"gen":0|} out);
      check_bool "summary counts the 2 extracted docs" true
        (has_match {|"docs":2,"ok":2|} err);
      check_bool "summary reports no reloads" true
        (has_match {|"reloads":0,|} err);
      check_bool "summary embeds a metrics object" true
        (has_match {|"metrics":{"counters":{|} err))

(* Admin ops share the request stream but are answered from the live
   registry without consuming a document ordinal: responses interleave in
   order, the summary still counts exactly the extracted documents, and
   the fault/ordinal schedule is untouched by however many op lines the
   client sends. *)
let test_serve_admin_ops () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir in
      let input = Filename.concat dir "input.ndjson" in
      write_file input
        ("{\"op\":\"stats\"}\n"
       ^ "{\"text\":\"surauijt chadhuri sigmod\",\"id\":\"d0\"}\n"
       ^ "{\"op\":\"health\"}\n"
       ^ "{\"op\":\"bogus\"}\n"
       ^ "{\"text\":\"venkaee shga spoke\"}\n"
       ^ "{\"op\":\"stats\"}\n");
      let status, out, err =
        run_cli_io ~dir ~stdin_file:input
          [ "serve"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "--domains"; "2" ]
      in
      check_int "exit 0" 0 (exit_code status);
      check_int "6 responses (4 admin + 2 docs)" 6 (List.length out);
      check_bool "stats response carries the snapshot" true
        (has_match {|"op":"stats".*"metrics":{"counters":{|} out);
      (* Admin pulls don't barrier the pool, so in-stream snapshots race
         with in-flight documents; the post-drain summary snapshot is the
         deterministic one. *)
      check_bool "summary snapshot counts the processed docs" true
        (has_match {|"docs_processed":2|} err);
      check_bool "health reports the single-process shard up" true
        (has_match
           {|"op":"health","status":"ok","shards":\[{"shard":0,"up":true|}
           out);
      check_bool "unknown op is a structured error" true
        (has_match {|"outcome":"error".*unknown admin op|} out);
      check_bool "admin ops consumed no document ordinals" true
        (has_match {|"docs":2,"ok":2|} err);
      (* Prometheus format: the same pull renders exposition text. *)
      let status, out, _ =
        run_cli_io ~dir ~stdin_file:input
          [
            "serve"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "--domains"; "2";
            "--metrics-format"; "prometheus";
          ]
      in
      check_int "prometheus run exit 0" 0 (exit_code status);
      check_bool "stats response renders exposition text" true
        (has_match {|"op":"stats".*"prometheus":".*# TYPE|} out))

(* --stats-interval-s: SIGALRM interrupts the blocked request read, the
   EINTR path emits a snapshot line to stderr and the read resumes with
   no byte lost. *)
let test_serve_stats_interval () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir in
      let stderr_file = Filename.concat dir "serve-stderr.txt" in
      let cmd =
        Printf.sprintf "%s 2> %s"
          (Filename.quote_command cli
             [
               "serve"; "-d"; dict; "-s"; "ed=2"; "--domains"; "1";
               "--stats-interval-s"; "1";
             ])
          (Filename.quote stderr_file)
      in
      let out, inp = Unix.open_process cmd in
      output_string inp "{\"text\":\"surauijt chadhuri\"}\n";
      flush inp;
      let r1 = input_line out in
      check_bool "request served" true
        (try
           ignore (Str.search_forward (Str.regexp {|"outcome":"ok"|}) r1 0);
           true
         with Not_found -> false);
      (* Two full periods while the server is parked in the read. *)
      Unix.sleepf 2.5;
      output_string inp "{\"text\":\"venkaee shga\"}\n";
      flush inp;
      ignore (input_line out);
      close_out inp;
      let status = Unix.close_process (out, inp) in
      check_int "serve exit 0" 0 (exit_code status);
      let err = read_lines stderr_file in
      let snapshots =
        List.filter
          (fun l ->
            try
              ignore (Str.search_forward (Str.regexp {|"op":"stats"|}) l 0);
              true
            with Not_found -> false)
          err
      in
      check_bool "periodic snapshots reached stderr" true
        (List.length snapshots >= 2);
      check_bool "summary still counts both docs" true
        (has_match {|"docs":2,"ok":2|} err))

let test_serve_quarantine_and_replay () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir in
      let input = Filename.concat dir "input.ndjson" in
      write_file input
        ("{\"text\":\"surauijt chadhuri\",\"id\":\"poison-a\"}\n"
       ^ "{\"text\":\"venkaee shga\"}\n");
      let quarantine = Filename.concat dir "quarantine.ndjson" in
      let status, out, err =
        run_cli_io ~dir ~stdin_file:input
          [
            "serve"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "--domains"; "1";
            "--retries"; "1"; "--backoff-ms"; "0";
            "--quarantine"; quarantine;
            "--inject"; "7:supervisor_worker=1.0";
          ]
      in
      check_int "exit 0" 0 (exit_code status);
      (* Rate 1.0 on a transient site: every attempt dies, both documents
         end up quarantined rather than lost or plain-failed. *)
      check_int "both docs answered" 2 (List.length out);
      check_bool "responses say quarantined" true
        (List.for_all
           (fun l ->
             try
               ignore
                 (Str.search_forward
                    (Str.regexp {|"outcome":"quarantined"|})
                    l 0);
               true
             with Not_found -> false)
           out);
      check_bool "summary counts them" true (has_match {|"quarantined":2|} err);
      check_int "dead-letter file has one record per doc" 2
        (List.length (read_lines quarantine));
      (* The dead-letter file is a self-contained repro: fuzz.exe --replay
         must reproduce every record's failure. *)
      let status, lines =
        run_fuzz [ "--replay=" ^ quarantine; "--dict=" ^ dict ]
      in
      check_int "replay reproduces all records" 0 (exit_code status);
      check_bool "replay reports both records" true
        (has_match "all 2 records reproduce" lines))

let test_serve_hot_reload () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir in
      let idx = Filename.concat dir "dict.fidx" in
      let status, _ =
        run_cli [ "index"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "-o"; idx ]
      in
      check_int "index build exit 0" 0 (exit_code status);
      let stderr_file = Filename.concat dir "serve-stderr.txt" in
      let cmd =
        Printf.sprintf "%s 2> %s"
          (Filename.quote_command cli
             [ "serve"; "-x"; idx; "-s"; "ed=2"; "--domains"; "1" ])
          (Filename.quote stderr_file)
      in
      let out, inp = Unix.open_process cmd in
      output_string inp "{\"text\":\"surauijt chadhuri\"}\n";
      flush inp;
      let r1 = input_line out in
      check_bool "first response served from generation 0" true
        (try
           ignore (Str.search_forward (Str.regexp {|"gen":0|}) r1 0);
           true
         with Not_found -> false);
      (* Rewrite the snapshot and push its mtime forward; the server is
         parked in input_line, so the reload happens when the next request
         arrives. *)
      let status, _ =
        run_cli [ "index"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "-o"; idx ]
      in
      check_int "index rebuild exit 0" 0 (exit_code status);
      let future = Unix.gettimeofday () +. 10. in
      Unix.utimes idx future future;
      output_string inp "{\"text\":\"surauijt chadhuri\"}\n";
      flush inp;
      let r2 = input_line out in
      check_bool "second response served from generation 1" true
        (try
           ignore (Str.search_forward (Str.regexp {|"gen":1|}) r2 0);
           true
         with Not_found -> false);
      close_out inp;
      let status = Unix.close_process (out, inp) in
      check_int "serve exit 0" 0 (exit_code status);
      let err = read_lines stderr_file in
      check_bool "summary reports the reload" true
        (has_match {|"docs":2,"ok":2|} err && has_match {|"reloads":1,|} err))

(* Online mutation over a WAL: dict_add/dict_remove admin ops apply
   immediately and durably — a fresh process on the same --wal replays
   them, so the added entity keeps matching after a "crash". The add gets
   id 5 (first past the 5 base entities) in both processes, which pins
   deterministic replay ordering. *)
let test_serve_dict_mutation_wal () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir in
      let wal = Filename.concat dir "dict.wal" in
      let input = Filename.concat dir "input.ndjson" in
      write_file input
        ("{\"op\":\"dict_add\",\"entity\":\"dong xin\"}\n"
       ^ "{\"text\":\"talk by dong xin today\"}\n"
       ^ "{\"op\":\"dict_remove\",\"entity\":\"venkatesh\"}\n"
       ^ "{\"op\":\"health\"}\n");
      let status, out, _ =
        run_cli_io ~dir ~stdin_file:input
          [
            "serve"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "--domains"; "1";
            "--wal"; wal;
          ]
      in
      check_int "exit 0" 0 (exit_code status);
      check_int "4 responses (3 admin + 1 doc)" 4 (List.length out);
      check_bool "dict_add applied" true
        (has_match {|"op":"dict_add","outcome":"ok","applied":true|} out);
      check_bool "added entity matches immediately under its fresh id" true
        (has_match {|"outcome":"ok".*"matches":\[{"e":5|} out);
      check_bool "dict_remove applied" true
        (has_match {|"op":"dict_remove","outcome":"ok","applied":true|} out);
      check_bool "health reports the 2-deep overlay" true
        (has_match {|"op":"health".*"delta":2|} out);
      check_bool "health reports the compaction age" true
        (has_match {|"compact_age_s"|} out);
      (* Fresh process, same WAL: both mutations replay at startup. *)
      let input2 = Filename.concat dir "input2.ndjson" in
      write_file input2
        ("{\"text\":\"talk by dong xin today\"}\n" ^ "{\"op\":\"health\"}\n");
      let status, out, _ =
        run_cli_io ~dir ~stdin_file:input2
          [
            "serve"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "--domains"; "1";
            "--wal"; wal;
          ]
      in
      check_int "restart exit 0" 0 (exit_code status);
      check_bool "replayed add still matches under the same id" true
        (has_match {|"outcome":"ok".*"matches":\[{"e":5|} out);
      check_bool "replayed overlay is still 2 deep" true
        (has_match {|"op":"health".*"delta":2|} out))

(* Offline tooling: `dict add`/`dict remove` append to the WAL without a
   server, and `dict compact` folds the log into the index snapshot and
   truncates it. *)
let test_dict_cli_offline_compact () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir in
      let idx = Filename.concat dir "dict.fidx" in
      let wal = Filename.concat dir "dict.wal" in
      let status, _ =
        run_cli [ "index"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "-o"; idx ]
      in
      check_int "index build exit 0" 0 (exit_code status);
      let status, lines =
        run_cli [ "dict"; "add"; "--wal"; wal; "dong xin"; "data mining" ]
      in
      check_int "dict add exit 0" 0 (exit_code status);
      check_bool "add reports both appends" true
        (has_match "appended 2 add" lines);
      let status, _ = run_cli [ "dict"; "remove"; "--wal"; wal; "venkatesh" ] in
      check_int "dict remove exit 0" 0 (exit_code status);
      let status, lines =
        run_cli [ "dict"; "compact"; "-s"; "ed=2"; "--wal"; wal; "--index"; idx ]
      in
      check_int "dict compact exit 0" 0 (exit_code status);
      check_bool "compact folds all three mutations" true
        (has_match "folded 3 mutation" lines);
      check_bool "live count after the fold" true (has_match "6 entities" lines);
      (* The WAL was truncated: a second compact has nothing to fold. *)
      let status, lines =
        run_cli [ "dict"; "compact"; "-s"; "ed=2"; "--wal"; wal; "--index"; idx ]
      in
      check_int "second compact exit 0" 0 (exit_code status);
      check_bool "wal empty after the fold" true (has_match "wal empty" lines);
      (* The folded snapshot serves the added entity with no WAL at all. *)
      let input = Filename.concat dir "in.ndjson" in
      write_file input "{\"text\":\"talk by dong xin today\"}\n";
      let status, out, _ =
        run_cli_io ~dir ~stdin_file:input
          [ "serve"; "-x"; idx; "-s"; "ed=2"; "--domains"; "1" ]
      in
      check_int "serve exit 0" 0 (exit_code status);
      check_bool "folded entity matches" true
        (has_match {|"outcome":"ok".*"matches":\[{"e":|} out))

(* Replay refuses a record captured under a different dictionary
   generation: the text would extract against the wrong dictionary and
   prove nothing. --gen declares which generation --dict holds. *)
let test_fuzz_replay_gen_gate () =
  with_temp_dir (fun dir ->
      let dict = paper_dict_file dir in
      let input = Filename.concat dir "input.ndjson" in
      write_file input "{\"text\":\"surauijt chadhuri\",\"id\":\"poison-a\"}\n";
      let quarantine = Filename.concat dir "quarantine.ndjson" in
      let status, _, _ =
        run_cli_io ~dir ~stdin_file:input
          [
            "serve"; "-d"; dict; "-s"; "ed=2"; "-q"; "2"; "--domains"; "1";
            "--retries"; "1"; "--backoff-ms"; "0";
            "--quarantine"; quarantine;
            "--inject"; "7:supervisor_worker=1.0";
          ]
      in
      check_int "serve exit 0" 0 (exit_code status);
      let records = read_lines quarantine in
      check_int "one quarantine record" 1 (List.length records);
      check_bool "record stamped with generation 0" true
        (has_match {|"gen":0|} records);
      let status, lines =
        run_fuzz [ "--replay=" ^ quarantine; "--dict=" ^ dict ]
      in
      check_int "same-generation replay reproduces" 0 (exit_code status);
      check_bool "reports reproduction" true
        (has_match "all 1 records reproduce" lines);
      (* Forge a generation-3 stamp: replay must refuse it loudly. *)
      let forged = Filename.concat dir "forged.ndjson" in
      write_file forged
        (String.concat "\n"
           (List.map
              (Str.replace_first (Str.regexp_string {|"gen":0|}) {|"gen":3|})
              records)
        ^ "\n");
      let status, lines = run_fuzz [ "--replay=" ^ forged; "--dict=" ^ dict ] in
      check_bool "mismatched generation exits nonzero" true
        (exit_code status <> 0);
      check_bool "clear error names the mismatch" true
        (has_match "GENERATION MISMATCH" lines);
      (* Declaring the matching generation lets the record replay. *)
      let status, lines =
        run_fuzz [ "--replay=" ^ forged; "--dict=" ^ dict; "--gen=3" ]
      in
      check_int "matching --gen replays" 0 (exit_code status);
      check_bool "reproduces under the declared generation" true
        (has_match "all 1 records reproduce" lines))

let () =
  Alcotest.run "faerie_cli"
    [
      ( "cli",
        [
          Alcotest.test_case "extract paper matches" `Quick test_extract_finds_paper_matches;
          Alcotest.test_case "extract --top" `Quick test_extract_top_k;
          Alcotest.test_case "extract --select" `Quick test_extract_select_non_overlapping;
          Alcotest.test_case "index roundtrip" `Quick test_index_roundtrip_cli;
          Alcotest.test_case "stats" `Quick test_stats_reports_counts;
          Alcotest.test_case "gen" `Quick test_gen_writes_corpus;
          Alcotest.test_case "missing source" `Quick test_missing_source_fails;
          Alcotest.test_case "bad sim spec" `Quick test_bad_sim_spec_fails;
          Alcotest.test_case "extract --metrics/--trace" `Quick
            test_extract_metrics_file;
          Alcotest.test_case "explain waterfall" `Quick test_explain_waterfall;
          Alcotest.test_case "explain --jsonl event schema" `Quick
            test_explain_jsonl;
          Alcotest.test_case "extract --explain=FILE" `Quick
            test_extract_explain_file;
          Alcotest.test_case "extract --verifier" `Quick
            test_extract_verifier_flag;
          Alcotest.test_case "extract --metrics-format=prom" `Quick
            test_extract_metrics_prom;
          Alcotest.test_case "regress exit codes" `Quick
            test_regress_exit_codes;
          Alcotest.test_case "regress --max-alloc-ratio" `Quick
            test_regress_alloc_gate;
          Alcotest.test_case "flame profile" `Quick test_flame_profile;
        ] );
      ( "serve",
        [
          Alcotest.test_case "ndjson roundtrip" `Quick
            test_serve_ndjson_roundtrip;
          Alcotest.test_case "quarantine + replay" `Quick
            test_serve_quarantine_and_replay;
          Alcotest.test_case "hot reload" `Quick test_serve_hot_reload;
          Alcotest.test_case "admin stats/health ops" `Quick
            test_serve_admin_ops;
          Alcotest.test_case "periodic stats interval" `Quick
            test_serve_stats_interval;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "dict_add/dict_remove over a WAL" `Quick
            test_serve_dict_mutation_wal;
          Alcotest.test_case "dict add/remove/compact CLI" `Quick
            test_dict_cli_offline_compact;
          Alcotest.test_case "replay generation gate" `Quick
            test_fuzz_replay_gen_gate;
        ] );
    ]
